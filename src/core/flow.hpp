#pragma once
// The paper's core contribution: thermal-aware guardbanding (Algorithm 1)
// and thermal-aware device/grade selection, driving the full CAD stack
// (pack -> place -> route -> activity -> power -> thermal -> STA).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "activity/activity.hpp"
#include "arch/arch_params.hpp"
#include "arch/fpga_grid.hpp"
#include "coffe/device_model.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/router.hpp"
#include "route/rr_graph.hpp"
#include "thermal/thermal_grid.hpp"
#include "timing/timing.hpp"
#include "util/units.hpp"

namespace taf::core {

/// A fully implemented design: the netlist and every CAD-stage artifact.
/// Sub-objects hold pointers into their siblings, so the struct is pinned
/// in memory (created through implement(), never copied or moved).
struct Implementation {
  arch::ArchParams arch;
  netlist::Netlist nl;
  pack::PackedNetlist packed;
  arch::FpgaGrid grid;
  place::Placement placement;
  route::RrGraph rr;
  route::RouteResult routes;
  std::vector<activity::SignalStats> activity;
  std::unique_ptr<timing::TimingAnalyzer> sta;

  Implementation(arch::ArchParams a, netlist::Netlist n, arch::FpgaGrid g)
      : arch(a), nl(std::move(n)), grid(g), rr(grid, arch) {}
  Implementation(const Implementation&) = delete;
  Implementation& operator=(const Implementation&) = delete;
};

/// CAD/analysis phases reported through FlowObserver. The runner's sweep
/// reports aggregate per-task time under these labels.
enum class FlowPhase {
  Pack = 0,
  Place,
  Route,
  Activity,
  StaBuild,  ///< TimingAnalyzer construction (route-tree walk)
  Sta,
  Power,
  Thermal,
};
inline constexpr int kNumFlowPhases = 8;
const char* flow_phase_name(FlowPhase phase);

/// How guardband() evaluates timing and thermal state inside the
/// Algorithm 1 loop.
enum class IncrementalMode {
  /// Full recompute every iteration — the original path, kept alive as
  /// the differential-testing oracle.
  Off,
  /// Incremental STA session + warm-started CG. Bit-identical timing to
  /// Off (DESIGN.md section 8); temperatures agree within the CG
  /// termination tolerance.
  Exact,
  /// Like Exact, but tile delays are frozen until the tile temperature
  /// drifts more than GuardbandOptions::incremental_epsilon_c. Fastest,
  /// approximate.
  Quantized,
};
const char* incremental_mode_name(IncrementalMode mode);

/// Session default: reads TAF_INCREMENTAL ("off" | "exact" | "quantized")
/// once; Exact when unset. Mirrors spice::default_backend().
IncrementalMode default_incremental_mode();

/// Work performed by the Algorithm 1 loop of one guardband() call
/// (priming/baseline/margin analyses excluded).
struct GuardbandStats {
  std::uint64_t edges_reevaluated = 0;  ///< connection delays re-derived
  std::uint64_t delay_cache_hits = 0;   ///< cached connection delays reused
  std::uint64_t cg_iterations = 0;      ///< thermal CG iterations (all solves)
  /// Subset of cg_iterations performed by a preconditioned solver (the
  /// stencil backend's SSOR-PCG). Kept separate so backend comparisons
  /// never conflate preconditioned with plain-CG iteration counts.
  std::uint64_t precond_cg_iterations = 0;
};

/// Per-thread accumulation of guardband work counters, in the mold of
/// spice::thread_counters(): the runner snapshots them around each task.
struct FlowCounters {
  std::uint64_t guardband_runs = 0;
  std::uint64_t guardband_nonconverged = 0;
  std::uint64_t sta_edges_reevaluated = 0;
  std::uint64_t sta_delay_cache_hits = 0;
  std::uint64_t thermal_cg_iterations = 0;
  std::uint64_t thermal_precond_iterations = 0;
  /// Transient-engine work (DynamicGuardband replays; see
  /// core/dynamic.hpp). Kept apart from the steady-state thermal
  /// counters so Algorithm 1 and trace-replay work never conflate.
  std::uint64_t transient_steps = 0;
  std::uint64_t transient_cg_iterations = 0;
  /// Place->thermal feedback work (the thermal_place stage): adjoint
  /// gradient solves performed and re-place moves proposed by the
  /// bounded refinement passes. Zero whenever the feature is off or the
  /// refined placement was served from the artifact store.
  std::uint64_t thermal_adjoint_solves = 0;
  std::uint64_t replace_moves = 0;

  FlowCounters operator-(const FlowCounters& rhs) const {
    FlowCounters d;
    d.guardband_runs = guardband_runs - rhs.guardband_runs;
    d.guardband_nonconverged = guardband_nonconverged - rhs.guardband_nonconverged;
    d.sta_edges_reevaluated = sta_edges_reevaluated - rhs.sta_edges_reevaluated;
    d.sta_delay_cache_hits = sta_delay_cache_hits - rhs.sta_delay_cache_hits;
    d.thermal_cg_iterations = thermal_cg_iterations - rhs.thermal_cg_iterations;
    d.thermal_precond_iterations = thermal_precond_iterations - rhs.thermal_precond_iterations;
    d.transient_steps = transient_steps - rhs.transient_steps;
    d.transient_cg_iterations = transient_cg_iterations - rhs.transient_cg_iterations;
    d.thermal_adjoint_solves = thermal_adjoint_solves - rhs.thermal_adjoint_solves;
    d.replace_moves = replace_moves - rhs.replace_moves;
    return d;
  }
};

/// Counters of the calling thread (thread-local; never contended).
FlowCounters& thread_flow_counters();

/// Optional progress/instrumentation hooks. implement() and guardband()
/// are re-entrant: all state is task-local, so one observer per task is
/// safe under concurrent flows (the observer itself is only invoked from
/// the calling thread).
struct FlowObserver {
  /// One Algorithm 1 iteration's outcome and work (counter fields are
  /// per-iteration deltas; zero in IncrementalMode::Off where no
  /// incremental session exists).
  struct IterationInfo {
    int iteration = 0;
    units::Megahertz fmax_mhz{0.0};
    units::Kelvin max_delta_c{0.0};
    std::uint64_t edges_reevaluated = 0;
    std::uint64_t delay_cache_hits = 0;
    std::uint64_t cg_iterations = 0;
  };

  /// Called after each phase with its wall-clock duration.
  std::function<void(FlowPhase, units::Seconds)> on_phase;
  /// Called once after each Algorithm 1 iteration with its outcome and
  /// work. (Formerly two hooks — a narrow on_iteration plus a richer
  /// on_iteration_info — dispatched back to back; consolidated into this
  /// single IterationInfo callback.)
  std::function<void(const IterationInfo&)> on_iteration;
};

/// Storage seam for the stage graph (see core/stage_graph.hpp): lets the
/// runner's artifact store substitute stored artifacts for stage
/// computations and capture fresh ones, without core knowing about disk.
struct StageHooks;

/// Thermal-aware placement refinement — the place->thermal feedback edge
/// (DESIGN.md section 15). Off by default: with enabled == false the flow
/// graph, every stage hash, and every result are untouched. When enabled,
/// two extra stages run after the thermally-blind flow: `thermal_place`
/// (price tiles with d(peak T)/d(P) from ThermalGrid::solve_adjoint and
/// greedily refine the placement under the composed cost model, up to
/// `passes` candidate passes with the gradient field refreshed after each
/// accepted one) and `route_refined` (re-route the refined placement),
/// and the final STA is built on the refined artifacts. Every pass is
/// guarded: it is kept only if the rerouted design is strictly faster at
/// the pricing point, or equally fast with a strictly lower realized
/// peak — the feedback edge can only improve the implementation.
struct ThermalPlaceOptions {
  bool enabled = false;
  /// Device whose Table II characterization prices block dynamic power
  /// and leakage. Required when enabled (implement() throws otherwise);
  /// borrowed, not owned. The stage's content hash identifies the device
  /// by (name, t_opt_c) — sufficient because devices are deterministic in
  /// (technology, arch, t_opt) and both are already hashed upstream.
  const coffe::DeviceModel* device = nullptr;
  /// Cost-mix weight: HPWL units per kelvin of predicted smooth-peak
  /// rise. Zero disables the thermal term (the refinement then only
  /// polishes wirelength).
  double weight = 1.0e6;
  int passes = 4;          ///< candidate passes (a rejected pass retries with a new seed)
  double effort = 0.25;    ///< refinement move budget scale (see PlaceOptions)
  int max_rounds = 32;     ///< descent rounds per refinement pass
  /// Smooth-max temperature scale tau of the log-sum-exp peak selection.
  units::Kelvin smooth_tau_k{0.05};
  /// Operating point the power map is priced at: design frequency and a
  /// uniform leakage temperature (the gradient is refreshed per pass, not
  /// per Algorithm 1 iteration, so a representative point suffices).
  units::Megahertz pricing_f_mhz{100.0};
  units::Celsius pricing_temp_c{60.0};
  /// Thermal model for the adjoint solves (backend, conductances).
  thermal::ThermalConfig thermal;
};

struct ImplementOptions {
  unsigned seed = 1;
  double place_effort = 0.5;
  route::RouteOptions route;
  ThermalPlaceOptions thermal_place;
  const FlowObserver* observer = nullptr;  ///< not owned; may be null
  const StageHooks* stage_hooks = nullptr; ///< not owned; may be null
};

/// Run the full implementation flow on a benchmark spec.
std::unique_ptr<Implementation> implement(const netlist::BenchmarkSpec& spec,
                                          const arch::ArchParams& arch,
                                          const ImplementOptions& opt = {});

struct GuardbandOptions {
  units::Celsius t_amb_c{25.0};    ///< ambient / board temperature
  units::Kelvin delta_t_c{1.0};    ///< convergence threshold and final margin
  int max_iterations = 10;         ///< the paper observes < 10 iterations
  units::Celsius t_worst_c{100.0}; ///< conventional worst-case corner
  thermal::ThermalConfig thermal;  ///< ambient_c is overridden by t_amb_c
  /// Loop evaluation strategy (see IncrementalMode).
  IncrementalMode incremental = default_incremental_mode();
  /// Tile-delay refresh threshold for IncrementalMode::Quantized.
  units::Kelvin incremental_epsilon_c{0.05};
  /// Multiplier on every computed power map (1.0 = physical). The zero
  /// setting is the metamorphic test seam: P = 0 must converge in one
  /// iteration with zero re-evaluated edges.
  double power_scale = 1.0;
  const FlowObserver* observer = nullptr;  ///< not owned; may be null
};

struct GuardbandResult {
  units::Megahertz fmax_mhz{0.0};           ///< thermal-aware frequency
  units::Megahertz baseline_fmax_mhz{0.0};  ///< worst-case-corner frequency
  int iterations = 0;
  /// False when the loop exhausted max_iterations without max_delta_c
  /// dropping below delta_t_c — the temperature map (and hence fmax) is
  /// then not a fixed point and the delta_t_c margin may not cover the
  /// residual error. Surfaced in bench reports; guardband() warns once.
  bool converged = false;
  /// Work performed by the Algorithm 1 loop (see GuardbandStats).
  GuardbandStats stats;
  /// Converged temperature map [degC]. Bulk solver payload, raw double
  /// by design (units.hpp keeps vectors raw to stay solver-compatible);
  /// scalar access goes through the typed tile_temp() accessor.
  std::vector<double> tile_temp_c;
  units::Celsius peak_temp_c{0.0};
  units::Celsius mean_temp_c{0.0};
  timing::TimingResult timing;     ///< final thermal-aware STA
  /// Power at the reported operating point: the converged temperature map
  /// and the reported (margin-applied) fmax_mhz.
  power::PowerBreakdown power;

  /// The paper's reported metric: performance improvement over the
  /// worst-case guardband.
  double gain() const {
    return baseline_fmax_mhz.value() > 0.0 ? fmax_mhz / baseline_fmax_mhz - 1.0 : 0.0;
  }

  /// Typed view of one tile of the converged temperature map.
  units::Celsius tile_temp(int tile) const {
    return units::Celsius{tile_temp_c[static_cast<std::size_t>(tile)]};
  }
};

/// Algorithm 1: iterate STA / power / thermal to convergence, then apply
/// the delta-T safety margin. Also runs the T_worst baseline STA.
GuardbandResult guardband(const Implementation& impl, const coffe::DeviceModel& dev,
                          const GuardbandOptions& opt = {});

/// One independent operating corner of a batched guardband evaluation:
/// everything in GuardbandOptions is shared across the batch except the
/// ambient and the power (activity) scale.
struct GuardbandCorner {
  units::Celsius t_amb_c{25.0};
  double power_scale = 1.0;
};

/// The options guardband_batch() evaluates corner `c` under: `base` with
/// the corner's ambient and power scale substituted.
GuardbandOptions with_corner(const GuardbandOptions& base, const GuardbandCorner& c);

/// Algorithm 1 over many independent corners of ONE implementation.
/// results[k] is bit-identical to guardband(impl, dev, with_corner(base,
/// corners[k])) — same fmax, temperatures, iteration and work counts —
/// but all corners still iterating share one blocked stencil traversal
/// per thermal solve through ThermalGrid::solve_batch (the ambient only
/// enters the T = Tamb + dT shift, never the conductance operator). The
/// sharing engages under the stencil backend with an incremental mode;
/// the generic backend and IncrementalMode::Off solve corner by corner
/// (still through one lockstep loop, so results cannot diverge from the
/// sequential path either way). base.observer fires for every corner; in
/// a batch its callbacks interleave across corners by iteration rather
/// than corner by corner.
std::vector<GuardbandResult> guardband_batch(const Implementation& impl,
                                             const coffe::DeviceModel& dev,
                                             const GuardbandOptions& base,
                                             const std::vector<GuardbandCorner>& corners);

/// Eq. (1)-based grade selection: the device (by index) with the lowest
/// expected representative-CP delay over a uniform [t_min, t_max] field
/// temperature range. Throws std::invalid_argument for an empty device
/// list. A reversed range is normalized (swapped); a degenerate range
/// (t_min == t_max) compares the point delay at that temperature.
int select_grade(const std::vector<coffe::DeviceModel>& devices, units::Celsius t_min,
                 units::Celsius t_max);

}  // namespace taf::core

#pragma once
// Technology-mapped netlist model (the VTR input of the paper's flow).
//
// Primitives are 6-LUTs (with explicit truth tables — the activity
// estimator computes exact Boolean-difference probabilities from them),
// flip-flops, BRAM and DSP macro blocks, and primary IOs. Each primitive
// drives exactly one net; a net records its sink primitives and pins.

#include <cstdint>
#include <string>
#include <vector>

namespace taf::netlist {

enum class PrimKind : std::uint8_t { Input, Output, Lut, Ff, Bram, Dsp };

const char* prim_kind_name(PrimKind k);

using PrimId = int;
using NetId = int;
inline constexpr NetId kNoNet = -1;

struct Primitive {
  PrimKind kind = PrimKind::Lut;
  std::string name;
  /// Nets feeding this primitive's input pins (size: LUT <= K, FF 1,
  /// BRAM/DSP several, Output 1, Input 0).
  std::vector<NetId> inputs;
  /// The net this primitive drives (kNoNet for Output).
  NetId output = kNoNet;
  /// LUT truth table over the first inputs.size() variables; bit i gives
  /// the output for input assignment i (LSB = input 0). Unused otherwise.
  std::uint64_t truth = 0;
};

struct NetSink {
  PrimId prim = 0;
  int pin = 0;
};

struct Net {
  PrimId driver = 0;
  std::vector<NetSink> sinks;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  PrimId add_primitive(Primitive p);
  /// Create the net driven by `driver` (every non-Output primitive gets one).
  NetId add_net(PrimId driver);
  void connect(NetId net, PrimId sink, int pin);

  const std::vector<Primitive>& prims() const { return prims_; }
  const std::vector<Net>& nets() const { return nets_; }
  Primitive& prim(PrimId id) { return prims_[static_cast<std::size_t>(id)]; }
  const Primitive& prim(PrimId id) const { return prims_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }

  int count(PrimKind k) const;

  /// Primitives in topological order (inputs/FF/BRAM/DSP outputs are
  /// sources; combinational LUT edges define the partial order). FF, BRAM
  /// and DSP primitives break cycles: their outputs are treated as
  /// sequential sources.
  std::vector<PrimId> topo_order() const;

  /// Sanity checks: every net's driver/sink ids are consistent and every
  /// LUT has <= 6 inputs. Returns an empty string or a description of the
  /// first violation.
  std::string validate() const;

 private:
  std::string name_;
  std::vector<Primitive> prims_;
  std::vector<Net> nets_;
};

}  // namespace taf::netlist

#pragma once
// Synthetic VTR-like benchmark suite.
//
// The paper maps the 19 circuits of the VTR 7.0 repository (avg 17K, max
// 89K 6-LUTs; up to 334 BRAMs and 213 DSPs). The BLIF sources are not
// available offline, so we generate layered random netlists that preserve
// each circuit's published resource mix, relative size and logic-depth
// flavour — the properties the paper's per-benchmark gains depend on
// (critical-path composition: soft- vs BRAM- vs DSP-dominated).

#include <vector>

#include "netlist/netlist.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace taf::netlist {

struct BenchmarkSpec {
  std::string name;
  int num_luts = 1000;
  int num_ffs = 300;
  int num_brams = 0;
  int num_dsps = 0;
  int num_inputs = 32;
  int num_outputs = 32;
  int logic_depth = 10;       ///< target combinational LUT depth
  double ff_ratio = 0.3;      ///< fraction of LUT outputs that are registered
};

/// Order-sensitive FNV-1a hash over every spec field. Lives next to the
/// struct so the field list cannot drift from the hash; shared by the
/// runner's cache keys and the core stage graph's artifact hashes.
inline std::uint64_t spec_hash(const BenchmarkSpec& spec) {
  util::Fnv1a h;
  h.add(std::string_view(spec.name));
  h.add(spec.num_luts);
  h.add(spec.num_ffs);
  h.add(spec.num_brams);
  h.add(spec.num_dsps);
  h.add(spec.num_inputs);
  h.add(spec.num_outputs);
  h.add(spec.logic_depth);
  h.add(spec.ff_ratio);
  return h.state;
}

/// The 19 VTR circuits with their published (full-size) resource mixes.
std::vector<BenchmarkSpec> vtr_suite();

/// Scale a spec's block counts by `factor` (rounding up, keeping at least
/// one of any nonzero resource). DESIGN.md documents the default 1/16
/// scaling used by the routed experiments.
BenchmarkSpec scaled(BenchmarkSpec spec, double factor);

/// Generate the layered random netlist for a spec. Deterministic in rng.
Netlist generate(const BenchmarkSpec& spec, util::Rng& rng);

}  // namespace taf::netlist

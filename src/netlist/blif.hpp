#pragma once
// BLIF reader/writer — the interchange format of the VTR flow the paper
// builds on. Lets generated benchmarks be inspected with standard tools
// and real .blif circuits be fed into this flow.
//
// Supported subset: .model/.inputs/.outputs/.names (with don't-cares on
// read), .latch (re-triggered), and .subckt bram/dsp for the hard blocks.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace taf::netlist {

/// Serialize the netlist as BLIF.
void write_blif(const Netlist& nl, std::ostream& out);

/// Parse a BLIF stream. Throws std::runtime_error with a line-numbered
/// message on malformed input or on constructs outside the subset.
Netlist read_blif(std::istream& in);

/// Convenience: round-trip through strings (used by tests/tools).
std::string to_blif_string(const Netlist& nl);
Netlist from_blif_string(const std::string& text);

}  // namespace taf::netlist

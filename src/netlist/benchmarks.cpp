#include "netlist/benchmarks.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace taf::netlist {

std::vector<BenchmarkSpec> vtr_suite() {
  // name, LUTs, FFs, BRAMs, DSPs, inputs, outputs, depth, ff_ratio
  // Published VTR 7.0 resource mixes (6-LUT mapping), lightly rounded.
  auto mk = [](const char* name, int luts, int ffs, int brams, int dsps, int in,
               int out, int depth, double ffr) {
    BenchmarkSpec s;
    s.name = name;
    s.num_luts = luts;
    s.num_ffs = ffs;
    s.num_brams = brams;
    s.num_dsps = dsps;
    s.num_inputs = in;
    s.num_outputs = out;
    s.logic_depth = depth;
    s.ff_ratio = ffr;
    return s;
  };
  return {
      mk("bgm", 32384, 5362, 0, 11, 257, 32, 14, 0.17),
      mk("blob_merge", 6600, 2403, 0, 0, 36, 100, 12, 0.36),
      mk("boundtop", 2921, 1669, 1, 0, 114, 192, 9, 0.42),
      mk("ch_intrinsics", 493, 230, 1, 0, 99, 130, 6, 0.40),
      mk("diffeq1", 486, 193, 0, 5, 162, 96, 10, 0.33),
      mk("diffeq2", 325, 96, 0, 5, 66, 96, 10, 0.30),
      mk("LU32PEEng", 76211, 20898, 168, 32, 114, 102, 16, 0.27),
      mk("LU8PEEng", 22634, 6630, 45, 8, 114, 102, 15, 0.29),
      mk("mcml", 89000, 53736, 334, 30, 36, 33, 16, 0.45),
      mk("mkDelayWorker32B", 5590, 2491, 43, 0, 506, 553, 8, 0.44),
      mk("mkPktMerge", 232, 36, 15, 0, 311, 156, 5, 0.16),
      mk("mkSMAdapter4B", 1977, 984, 5, 0, 195, 205, 8, 0.42),
      mk("or1200", 3054, 691, 2, 1, 385, 394, 12, 0.23),
      mk("raygentop", 2148, 1423, 1, 18, 239, 305, 9, 0.44),
      mk("sha", 2212, 911, 0, 0, 38, 36, 11, 0.38),
      mk("stereovision0", 11462, 13405, 0, 0, 157, 197, 8, 0.54),
      mk("stereovision1", 10366, 11789, 0, 152, 133, 145, 9, 0.53),
      mk("stereovision2", 29849, 18416, 0, 213, 149, 182, 11, 0.42),
      mk("stereovision3", 174, 96, 0, 0, 11, 30, 6, 0.41),
  };
}

BenchmarkSpec scaled(BenchmarkSpec spec, double factor) {
  auto scale = [&](int v) {
    if (v == 0) return 0;
    return std::max(1, static_cast<int>(std::lround(v * factor)));
  };
  spec.num_luts = std::max(8, scale(spec.num_luts));
  spec.num_ffs = scale(spec.num_ffs);
  spec.num_brams = scale(spec.num_brams);
  spec.num_dsps = scale(spec.num_dsps);
  spec.num_inputs = std::clamp(scale(spec.num_inputs), 4, spec.num_inputs);
  spec.num_outputs = std::clamp(scale(spec.num_outputs), 4, spec.num_outputs);
  return spec;
}

namespace {

/// Random LUT truth table with a biased onset (real logic is rarely a
/// balanced random function).
std::uint64_t random_truth(util::Rng& rng, int k) {
  const double bias = rng.uniform(0.25, 0.75);
  std::uint64_t t = 0;
  const int bits = 1 << k;
  for (int i = 0; i < bits; ++i) {
    if (rng.bernoulli(bias)) t |= (1ULL << i);
  }
  // Degenerate constants would be swept by synthesis; force at least one
  // 0 and one 1.
  if (t == 0) t = 1;
  const std::uint64_t full = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  if (t == full) t &= ~1ULL;
  return t;
}

}  // namespace

Netlist generate(const BenchmarkSpec& spec, util::Rng& rng) {
  Netlist nl(spec.name);
  const int depth = std::max(2, spec.logic_depth);

  // Real circuits are modular: logic clusters into submodules whose nets
  // stay mostly internal (Rent's rule). Each layer is partitioned into
  // vertical module slices; a primitive draws most inputs from its own
  // module, giving the placer locality to exploit and keeping routing
  // demand realistic.
  const int num_modules = std::max(1, spec.num_luts / 90);

  // layer_nets[layer][module] -> available nets.
  std::vector<std::vector<std::vector<NetId>>> layer_nets(
      static_cast<std::size_t>(depth) + 1,
      std::vector<std::vector<NetId>>(static_cast<std::size_t>(num_modules)));

  // Primary inputs form layer 0, distributed round-robin over modules.
  for (int i = 0; i < spec.num_inputs; ++i) {
    const PrimId p = nl.add_primitive({PrimKind::Input, "pi" + std::to_string(i), {}, kNoNet, 0});
    layer_nets[0][static_cast<std::size_t>(i % num_modules)].push_back(nl.add_net(p));
  }

  // High-fanout control nets get picked preferentially.
  std::vector<NetId> control_nets;
  for (int i = 0; i < std::max(1, spec.num_inputs / 8); ++i) {
    control_nets.push_back(layer_nets[0][static_cast<std::size_t>(i % num_modules)][0]);
  }

  // Pick a source net for a primitive in (layer, module): mostly the same
  // module in the previous layer, some deeper history, a small fraction
  // from neighbouring modules, occasionally a control net.
  auto pick_source = [&](int layer, int module) -> NetId {
    if (rng.bernoulli(0.05) && !control_nets.empty()) {
      return control_nets[rng.next_below(static_cast<std::uint32_t>(control_nets.size()))];
    }
    int m = module;
    if (rng.bernoulli(0.10) && num_modules > 1) {
      // Cross-module connection, usually to a neighbour.
      const int hop = rng.bernoulli(0.75) ? 1 : 1 + static_cast<int>(rng.next_below(
                                                       static_cast<std::uint32_t>(num_modules)));
      m = (module + hop) % num_modules;
    }
    int from = layer - 1;
    const double r = rng.next_double();
    if (r > 0.60 && layer >= 2) from = layer - 1 - static_cast<int>(rng.next_below(2)) - (r > 0.85 ? 1 : 0);
    from = std::max(0, from);
    // Walk back/aside until a non-empty pool is found.
    for (int tries = 0; tries < num_modules; ++tries) {
      int f = from;
      while (f > 0 && layer_nets[static_cast<std::size_t>(f)][static_cast<std::size_t>(m)].empty()) --f;
      const auto& pool = layer_nets[static_cast<std::size_t>(f)][static_cast<std::size_t>(m)];
      if (!pool.empty()) return pool[rng.next_below(static_cast<std::uint32_t>(pool.size()))];
      m = (m + 1) % num_modules;
    }
    assert(false && "no source pool available");
    return 0;
  };

  // Distribute LUTs over layers 1..depth (bell-ish: middle layers widest).
  std::vector<int> luts_in_layer(static_cast<std::size_t>(depth) + 1, 0);
  {
    std::vector<double> w(static_cast<std::size_t>(depth) + 1, 0.0);
    double total = 0.0;
    for (int l = 1; l <= depth; ++l) {
      const double x = (l - 0.5 * depth) / (0.5 * depth);
      w[static_cast<std::size_t>(l)] = 1.0 - 0.55 * x * x;
      total += w[static_cast<std::size_t>(l)];
    }
    int assigned = 0;
    for (int l = 1; l <= depth; ++l) {
      const int n = static_cast<int>(std::floor(spec.num_luts * w[static_cast<std::size_t>(l)] / total));
      luts_in_layer[static_cast<std::size_t>(l)] = std::max(1, n);
      assigned += luts_in_layer[static_cast<std::size_t>(l)];
    }
    luts_in_layer[static_cast<std::size_t>(depth / 2 + 1)] += std::max(0, spec.num_luts - assigned);
  }

  // Hard blocks are sprinkled over the middle layers.
  std::vector<int> brams_in_layer(static_cast<std::size_t>(depth) + 1, 0);
  std::vector<int> dsps_in_layer(static_cast<std::size_t>(depth) + 1, 0);
  for (int i = 0; i < spec.num_brams; ++i)
    brams_in_layer[1 + rng.next_below(static_cast<std::uint32_t>(depth - 1))]++;
  for (int i = 0; i < spec.num_dsps; ++i)
    dsps_in_layer[1 + rng.next_below(static_cast<std::uint32_t>(depth - 1))]++;

  int ffs_left = spec.num_ffs;
  int lut_seq = 0, ff_seq = 0, bram_seq = 0, dsp_seq = 0;
  // Hard blocks form datapath chains (multiplier cascades, FIFO pipes):
  // a new DSP/BRAM usually consumes the previous one's output, which is
  // what puts hard blocks on the critical path of DSP-heavy circuits.
  NetId last_dsp_net = kNoNet;
  NetId last_bram_net = kNoNet;
  int dsp_chain_len = 0;
  int bram_chain_len = 0;

  for (int layer = 1; layer <= depth; ++layer) {
    auto& pools = layer_nets[static_cast<std::size_t>(layer)];

    for (int i = 0; i < luts_in_layer[static_cast<std::size_t>(layer)]; ++i) {
      const int module = i % num_modules;
      const int k = 2 + static_cast<int>(rng.next_below(5));  // 2..6 inputs
      Primitive lut{PrimKind::Lut, "lut" + std::to_string(lut_seq++), {}, kNoNet, 0};
      const PrimId id = nl.add_primitive(std::move(lut));
      for (int pin = 0; pin < k; ++pin) nl.connect(pick_source(layer, module), id, pin);
      nl.prim(id).truth = random_truth(rng, k);
      NetId out = nl.add_net(id);

      // Register a fraction of LUT outputs; the FF output replaces the
      // combinational net in the pool (cutting the timing path there).
      if (ffs_left > 0 && rng.bernoulli(spec.ff_ratio)) {
        const PrimId ff = nl.add_primitive({PrimKind::Ff, "ff" + std::to_string(ff_seq++), {}, kNoNet, 0});
        nl.connect(out, ff, 0);
        out = nl.add_net(ff);
        --ffs_left;
      }
      pools[static_cast<std::size_t>(module)].push_back(out);
      if (rng.bernoulli(0.01)) control_nets.push_back(out);
    }

    for (int i = 0; i < brams_in_layer[static_cast<std::size_t>(layer)]; ++i) {
      const int module = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_modules)));
      const PrimId id = nl.add_primitive({PrimKind::Bram, "bram" + std::to_string(bram_seq++), {}, kNoNet, 0});
      for (int pin = 0; pin < 12; ++pin) {
        if (pin == 0 && last_bram_net != kNoNet && bram_chain_len < 3 &&
            rng.bernoulli(0.6)) {
          nl.connect(last_bram_net, id, pin);
          ++bram_chain_len;
        } else {
          if (pin == 0) bram_chain_len = 0;
          nl.connect(pick_source(layer, module), id, pin);
        }
      }
      last_bram_net = nl.add_net(id);
      pools[static_cast<std::size_t>(module)].push_back(last_bram_net);
    }
    for (int i = 0; i < dsps_in_layer[static_cast<std::size_t>(layer)]; ++i) {
      const int module = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_modules)));
      const PrimId id = nl.add_primitive({PrimKind::Dsp, "dsp" + std::to_string(dsp_seq++), {}, kNoNet, 0});
      for (int pin = 0; pin < 8; ++pin) {
        if (pin == 0 && last_dsp_net != kNoNet && dsp_chain_len < 4 &&
            rng.bernoulli(0.7)) {
          nl.connect(last_dsp_net, id, pin);  // multiply-accumulate cascade
          ++dsp_chain_len;
        } else {
          if (pin == 0) dsp_chain_len = 0;
          nl.connect(pick_source(layer, module), id, pin);
        }
      }
      last_dsp_net = nl.add_net(id);
      pools[static_cast<std::size_t>(module)].push_back(last_dsp_net);
    }
  }

  // Primary outputs tap the last layers.
  for (int i = 0; i < spec.num_outputs; ++i) {
    const PrimId id = nl.add_primitive({PrimKind::Output, "po" + std::to_string(i), {}, kNoNet, 0});
    nl.connect(pick_source(depth, i % num_modules), id, 0);
  }

  assert(nl.validate().empty());
  return nl;
}

}  // namespace taf::netlist

#include "netlist/netlist.hpp"

#include <cassert>
#include <queue>

namespace taf::netlist {

const char* prim_kind_name(PrimKind k) {
  switch (k) {
    case PrimKind::Input: return "input";
    case PrimKind::Output: return "output";
    case PrimKind::Lut: return "lut";
    case PrimKind::Ff: return "ff";
    case PrimKind::Bram: return "bram";
    case PrimKind::Dsp: return "dsp";
  }
  return "?";
}

PrimId Netlist::add_primitive(Primitive p) {
  prims_.push_back(std::move(p));
  return static_cast<PrimId>(prims_.size() - 1);
}

NetId Netlist::add_net(PrimId driver) {
  assert(driver >= 0 && driver < static_cast<PrimId>(prims_.size()));
  nets_.push_back(Net{driver, {}});
  const NetId id = static_cast<NetId>(nets_.size() - 1);
  prims_[static_cast<std::size_t>(driver)].output = id;
  return id;
}

void Netlist::connect(NetId net, PrimId sink, int pin) {
  assert(net >= 0 && net < static_cast<NetId>(nets_.size()));
  nets_[static_cast<std::size_t>(net)].sinks.push_back({sink, pin});
  auto& inputs = prims_[static_cast<std::size_t>(sink)].inputs;
  if (static_cast<int>(inputs.size()) <= pin) inputs.resize(static_cast<std::size_t>(pin) + 1, kNoNet);
  inputs[static_cast<std::size_t>(pin)] = net;
}

int Netlist::count(PrimKind k) const {
  int n = 0;
  for (const Primitive& p : prims_)
    if (p.kind == k) ++n;
  return n;
}

std::vector<PrimId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational edges only: an edge exists from
  // net driver d to sink s iff s is a LUT or Output (sequential elements
  // consume but do not propagate within a cycle).
  const auto n = static_cast<PrimId>(prims_.size());
  std::vector<int> pending(static_cast<std::size_t>(n), 0);
  for (PrimId id = 0; id < n; ++id) {
    const Primitive& p = prims_[static_cast<std::size_t>(id)];
    if (p.kind == PrimKind::Lut || p.kind == PrimKind::Output) {
      int cnt = 0;
      for (NetId in : p.inputs)
        if (in != kNoNet) ++cnt;
      pending[static_cast<std::size_t>(id)] = cnt;
    }
  }
  std::queue<PrimId> ready;
  for (PrimId id = 0; id < n; ++id) {
    if (pending[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<PrimId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const PrimId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Primitive& p = prims_[static_cast<std::size_t>(id)];
    if (p.output == kNoNet) continue;
    for (const NetSink& s : nets_[static_cast<std::size_t>(p.output)].sinks) {
      const Primitive& sp = prims_[static_cast<std::size_t>(s.prim)];
      if (sp.kind != PrimKind::Lut && sp.kind != PrimKind::Output) continue;
      if (--pending[static_cast<std::size_t>(s.prim)] == 0) ready.push(s.prim);
    }
  }
  assert(order.size() == prims_.size() && "combinational cycle in netlist");
  return order;
}

std::string Netlist::validate() const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& net = nets_[i];
    if (net.driver < 0 || net.driver >= static_cast<PrimId>(prims_.size()))
      return "net " + std::to_string(i) + ": bad driver";
    if (prims_[static_cast<std::size_t>(net.driver)].output != static_cast<NetId>(i))
      return "net " + std::to_string(i) + ": driver does not point back";
    for (const NetSink& s : net.sinks) {
      if (s.prim < 0 || s.prim >= static_cast<PrimId>(prims_.size()))
        return "net " + std::to_string(i) + ": bad sink";
      const auto& inputs = prims_[static_cast<std::size_t>(s.prim)].inputs;
      if (s.pin < 0 || s.pin >= static_cast<int>(inputs.size()) ||
          inputs[static_cast<std::size_t>(s.pin)] != static_cast<NetId>(i))
        return "net " + std::to_string(i) + ": sink pin mismatch";
    }
  }
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const Primitive& p = prims_[i];
    if (p.kind == PrimKind::Lut && p.inputs.size() > 6)
      return "prim " + std::to_string(i) + ": LUT with more than 6 inputs";
    if (p.kind != PrimKind::Output && p.output == kNoNet)
      return "prim " + std::to_string(i) + ": missing output net";
  }
  return {};
}

}  // namespace taf::netlist

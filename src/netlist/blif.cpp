#include "netlist/blif.hpp"

#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace taf::netlist {

namespace {

/// Net names: primary IO keep the primitive's name; internal nets are
/// named after their driver.
std::string net_name(const Netlist& nl, NetId n) {
  const Primitive& d = nl.prim(nl.net(n).driver);
  return d.name;
}

}  // namespace

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.name() << "\n";

  out << ".inputs";
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Input) out << " " << p.name;
  }
  out << "\n.outputs";
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Output) out << " " << p.name;
  }
  out << "\n";

  for (PrimId id = 0; id < static_cast<PrimId>(nl.prims().size()); ++id) {
    const Primitive& p = nl.prim(id);
    switch (p.kind) {
      case PrimKind::Lut: {
        out << ".names";
        for (NetId in : p.inputs) out << " " << net_name(nl, in);
        out << " " << p.name << "\n";
        const int k = static_cast<int>(p.inputs.size());
        for (int m = 0; m < (1 << k); ++m) {
          if (!((p.truth >> m) & 1ULL)) continue;
          for (int b = 0; b < k; ++b) out << (((m >> b) & 1) ? '1' : '0');
          out << " 1\n";
        }
        break;
      }
      case PrimKind::Ff:
        out << ".latch " << net_name(nl, p.inputs.at(0)) << " " << p.name
            << " re clk 0\n";
        break;
      case PrimKind::Bram:
      case PrimKind::Dsp: {
        out << ".subckt " << (p.kind == PrimKind::Bram ? "bram" : "dsp");
        for (std::size_t i = 0; i < p.inputs.size(); ++i) {
          out << " in" << i << "=" << net_name(nl, p.inputs[i]);
        }
        out << " out=" << p.name << "\n";
        break;
      }
      case PrimKind::Output:
        // Emitted as a buffer .names so the output net name is bound.
        out << ".names " << net_name(nl, p.inputs.at(0)) << " " << p.name << "\n1 1\n";
        break;
      case PrimKind::Input:
        break;
    }
  }
  out << ".end\n";
}

Netlist read_blif(std::istream& in) {
  std::string line, logical;
  std::vector<std::string> lines;  // logical lines ('\' continuations folded)
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty()) continue;
    if (line.back() == '\\') {
      line.pop_back();
      logical += line;
      continue;
    }
    logical += line;
    lines.push_back(logical);
    logical.clear();
  }

  auto tokens_of = [](const std::string& l) {
    std::istringstream ss(l);
    std::vector<std::string> t;
    std::string w;
    while (ss >> w) t.push_back(w);
    return t;
  };

  Netlist nl("blif");
  std::map<std::string, NetId> net_of;          // net name -> id (once driven)
  std::map<std::string, std::vector<std::pair<PrimId, int>>> pending;  // undriven uses
  std::vector<std::string> output_names;

  auto use_net = [&](const std::string& name, PrimId sink, int pin) {
    auto it = net_of.find(name);
    if (it != net_of.end()) {
      nl.connect(it->second, sink, pin);
    } else {
      pending[name].push_back({sink, pin});
    }
  };
  auto drive_net = [&](const std::string& name, PrimId driver) {
    if (net_of.count(name)) throw std::runtime_error("blif: net driven twice: " + name);
    const NetId n = nl.add_net(driver);
    net_of[name] = n;
    auto it = pending.find(name);
    if (it != pending.end()) {
      for (auto [sink, pin] : it->second) nl.connect(n, sink, pin);
      pending.erase(it);
    }
  };

  std::size_t li = 0;
  // Deferred .names bodies: (lut prim, k) -> collect rows until next dot-line.
  for (li = 0; li < lines.size(); ++li) {
    const auto tok = tokens_of(lines[li]);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];
    if (cmd == ".model" || cmd == ".end") continue;
    if (cmd == ".inputs") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const PrimId p = nl.add_primitive({PrimKind::Input, tok[i], {}, kNoNet, 0});
        drive_net(tok[i], p);
      }
    } else if (cmd == ".outputs") {
      for (std::size_t i = 1; i < tok.size(); ++i) output_names.push_back(tok[i]);
    } else if (cmd == ".latch") {
      if (tok.size() < 3) throw std::runtime_error("blif: malformed .latch");
      const PrimId p = nl.add_primitive({PrimKind::Ff, tok[2], {}, kNoNet, 0});
      use_net(tok[1], p, 0);
      drive_net(tok[2], p);
    } else if (cmd == ".subckt") {
      if (tok.size() < 3) throw std::runtime_error("blif: malformed .subckt");
      const PrimKind kind = tok[1] == "bram" ? PrimKind::Bram
                            : tok[1] == "dsp" ? PrimKind::Dsp
                                              : PrimKind::Lut;
      if (kind == PrimKind::Lut)
        throw std::runtime_error("blif: unsupported subckt " + tok[1]);
      std::string out_name;
      std::vector<std::pair<int, std::string>> ins;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) throw std::runtime_error("blif: bad binding");
        const std::string port = tok[i].substr(0, eq);
        const std::string net = tok[i].substr(eq + 1);
        if (port == "out") {
          out_name = net;
        } else if (port.rfind("in", 0) == 0) {
          ins.push_back({std::stoi(port.substr(2)), net});
        }
      }
      if (out_name.empty()) throw std::runtime_error("blif: subckt without out=");
      const PrimId p = nl.add_primitive({kind, out_name, {}, kNoNet, 0});
      for (const auto& [pin, net] : ins) use_net(net, p, pin);
      drive_net(out_name, p);
    } else if (cmd == ".names") {
      if (tok.size() < 2) throw std::runtime_error("blif: malformed .names");
      const std::string out_name = tok.back();
      const int k = static_cast<int>(tok.size()) - 2;
      if (k > 6) throw std::runtime_error("blif: .names with more than 6 inputs");
      const PrimId p = nl.add_primitive({PrimKind::Lut, out_name, {}, kNoNet, 0});
      for (int i = 0; i < k; ++i) use_net(tok[static_cast<std::size_t>(i) + 1], p, i);
      // Consume truth rows.
      std::uint64_t truth = 0;
      while (li + 1 < lines.size() && lines[li + 1][0] != '.') {
        ++li;
        const auto row = tokens_of(lines[li]);
        if (row.size() != (k == 0 ? 1u : 2u))
          throw std::runtime_error("blif: bad truth row at line " + std::to_string(li));
        const std::string& bits = k == 0 ? "" : row[0];
        const std::string& val = row.back();
        if (val != "1") throw std::runtime_error("blif: only onset rows supported");
        if (static_cast<int>(bits.size()) != k)
          throw std::runtime_error("blif: truth row width mismatch");
        // Expand don't-cares recursively.
        std::vector<int> minterms{0};
        for (int b = 0; b < k; ++b) {
          const char cbit = bits[static_cast<std::size_t>(b)];
          std::vector<int> next;
          for (int m : minterms) {
            if (cbit == '0' || cbit == '-') next.push_back(m);
            if (cbit == '1' || cbit == '-') next.push_back(m | (1 << b));
          }
          minterms = std::move(next);
        }
        for (int m : minterms) truth |= (1ULL << m);
      }
      if (k == 0) truth = 1;  // constant-1 .names
      nl.prim(p).truth = truth;
      drive_net(out_name, p);
    } else {
      throw std::runtime_error("blif: unsupported construct " + cmd);
    }
  }

  // Primary outputs: one Output primitive per declared name.
  for (const std::string& name : output_names) {
    const PrimId p = nl.add_primitive({PrimKind::Output, name + "_po", {}, kNoNet, 0});
    use_net(name, p, 0);
  }
  if (!pending.empty())
    throw std::runtime_error("blif: undriven net " + pending.begin()->first);
  return nl;
}

std::string to_blif_string(const Netlist& nl) {
  std::ostringstream ss;
  write_blif(nl, ss);
  return ss.str();
}

Netlist from_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return read_blif(ss);
}

}  // namespace taf::netlist

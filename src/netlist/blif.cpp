#include "netlist/blif.hpp"

#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace taf::netlist {

namespace {

/// Net names: primary IO keep the primitive's name; internal nets are
/// named after their driver.
std::string net_name(const Netlist& nl, NetId n) {
  const Primitive& d = nl.prim(nl.net(n).driver);
  return d.name;
}

}  // namespace

namespace {

/// Name an Output primitive is declared under. read_blif names the
/// Output prim "<net>_po" (the buffer LUT it creates owns the bare net
/// name); stripping the suffix here makes print∘parse a fixed point
/// instead of stacking one more buffer layer per round trip.
std::string declared_output_name(const Primitive& p) {
  constexpr const char kSuffix[] = "_po";
  if (p.name.size() > 3 && p.name.compare(p.name.size() - 3, 3, kSuffix) == 0)
    return p.name.substr(0, p.name.size() - 3);
  return p.name;
}

}  // namespace

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.name() << "\n";

  out << ".inputs";
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Input) out << " " << p.name;
  }
  out << "\n.outputs";
  for (const Primitive& p : nl.prims()) {
    if (p.kind == PrimKind::Output) out << " " << declared_output_name(p);
  }
  out << "\n";

  for (PrimId id = 0; id < static_cast<PrimId>(nl.prims().size()); ++id) {
    const Primitive& p = nl.prim(id);
    switch (p.kind) {
      case PrimKind::Lut: {
        out << ".names";
        for (NetId in : p.inputs) out << " " << net_name(nl, in);
        out << " " << p.name << "\n";
        const int k = static_cast<int>(p.inputs.size());
        for (int m = 0; m < (1 << k); ++m) {
          if (!((p.truth >> m) & 1ULL)) continue;
          for (int b = 0; b < k; ++b) out << (((m >> b) & 1) ? '1' : '0');
          out << " 1\n";
        }
        break;
      }
      case PrimKind::Ff:
        out << ".latch " << net_name(nl, p.inputs.at(0)) << " " << p.name
            << " re clk 0\n";
        break;
      case PrimKind::Bram:
      case PrimKind::Dsp: {
        out << ".subckt " << (p.kind == PrimKind::Bram ? "bram" : "dsp");
        for (std::size_t i = 0; i < p.inputs.size(); ++i) {
          out << " in" << i << "=" << net_name(nl, p.inputs[i]);
        }
        out << " out=" << p.name << "\n";
        break;
      }
      case PrimKind::Output: {
        // Bind the declared output name to its source net with a buffer
        // .names — unless the source net already carries that name (the
        // buffer read_blif created on a previous round trip).
        const std::string src = net_name(nl, p.inputs.at(0));
        const std::string declared = declared_output_name(p);
        if (src != declared) out << ".names " << src << " " << declared << "\n1 1\n";
        break;
      }
      case PrimKind::Input:
        break;
    }
  }
  out << ".end\n";
}

Netlist read_blif(std::istream& in) {
  std::string line, logical;
  std::vector<std::string> lines;  // logical lines ('\' continuations folded)
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty()) continue;
    if (line.back() == '\\') {
      line.pop_back();
      logical += line;
      continue;
    }
    logical += line;
    lines.push_back(logical);
    logical.clear();
  }
  // A trailing '\' on the last physical line must not silently drop the
  // accumulated logical line.
  if (!logical.empty()) lines.push_back(logical);

  auto tokens_of = [](const std::string& l) {
    std::istringstream ss(l);
    std::vector<std::string> t;
    std::string w;
    while (ss >> w) t.push_back(w);
    return t;
  };

  // The model name comes from the first .model line; a second .model
  // would start a hierarchical BLIF, which this reader does not support —
  // reject it instead of silently merging both models into one netlist.
  std::string model_name = "blif";
  int models_seen = 0;
  for (const std::string& l : lines) {
    std::istringstream ss(l);
    std::string cmd, name;
    ss >> cmd;
    if (cmd != ".model") continue;
    if (++models_seen > 1)
      throw std::runtime_error("blif: duplicate .model (hierarchy unsupported)");
    if (ss >> name) model_name = name;
  }

  Netlist nl(model_name);
  std::map<std::string, NetId> net_of;          // net name -> id (once driven)
  std::map<std::string, std::vector<std::pair<PrimId, int>>> pending;  // undriven uses
  std::vector<std::string> output_names;

  auto use_net = [&](const std::string& name, PrimId sink, int pin) {
    auto it = net_of.find(name);
    if (it != net_of.end()) {
      nl.connect(it->second, sink, pin);
    } else {
      pending[name].push_back({sink, pin});
    }
  };
  auto drive_net = [&](const std::string& name, PrimId driver) {
    if (net_of.count(name)) throw std::runtime_error("blif: net driven twice: " + name);
    const NetId n = nl.add_net(driver);
    net_of[name] = n;
    auto it = pending.find(name);
    if (it != pending.end()) {
      for (auto [sink, pin] : it->second) nl.connect(n, sink, pin);
      pending.erase(it);
    }
  };

  std::size_t li = 0;
  // Deferred .names bodies: (lut prim, k) -> collect rows until next dot-line.
  for (li = 0; li < lines.size(); ++li) {
    const auto tok = tokens_of(lines[li]);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];
    if (cmd == ".model" || cmd == ".end") continue;
    if (cmd == ".inputs") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const PrimId p = nl.add_primitive({PrimKind::Input, tok[i], {}, kNoNet, 0});
        drive_net(tok[i], p);
      }
    } else if (cmd == ".outputs") {
      for (std::size_t i = 1; i < tok.size(); ++i) output_names.push_back(tok[i]);
    } else if (cmd == ".latch") {
      if (tok.size() < 3) throw std::runtime_error("blif: malformed .latch");
      const PrimId p = nl.add_primitive({PrimKind::Ff, tok[2], {}, kNoNet, 0});
      use_net(tok[1], p, 0);
      drive_net(tok[2], p);
    } else if (cmd == ".subckt") {
      if (tok.size() < 3) throw std::runtime_error("blif: malformed .subckt");
      const PrimKind kind = tok[1] == "bram" ? PrimKind::Bram
                            : tok[1] == "dsp" ? PrimKind::Dsp
                                              : PrimKind::Lut;
      if (kind == PrimKind::Lut)
        throw std::runtime_error("blif: unsupported subckt " + tok[1]);
      std::string out_name;
      std::vector<std::pair<int, std::string>> ins;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) throw std::runtime_error("blif: bad binding");
        const std::string port = tok[i].substr(0, eq);
        const std::string net = tok[i].substr(eq + 1);
        if (port == "out") {
          out_name = net;
        } else if (port.rfind("in", 0) == 0) {
          // Parse the pin index by hand: std::stoi would accept leading
          // signs/whitespace and throw non-runtime_error exceptions, and
          // an unchecked index would let one malformed token resize the
          // input vector to gigabytes.
          const std::string digits = port.substr(2);
          constexpr int kMaxSubcktPins = 64;
          int pin = 0;
          if (digits.empty()) throw std::runtime_error("blif: bad subckt pin " + port);
          for (char ch : digits) {
            if (ch < '0' || ch > '9')
              throw std::runtime_error("blif: bad subckt pin " + port);
            pin = pin * 10 + (ch - '0');
            if (pin >= kMaxSubcktPins)
              throw std::runtime_error("blif: subckt pin index out of range: " + port);
          }
          ins.push_back({pin, net});
        }
      }
      if (out_name.empty()) throw std::runtime_error("blif: subckt without out=");
      // Pins must be exactly in0..in{n-1}: a duplicate would overwrite a
      // binding while leaving a stale sink on the old net, and a gap
      // would leave an unconnected input pin.
      std::vector<char> pin_seen(ins.size(), 0);
      for (const auto& [pin, net] : ins) {
        if (pin >= static_cast<int>(ins.size()) || pin_seen[static_cast<std::size_t>(pin)])
          throw std::runtime_error("blif: duplicate or non-contiguous subckt pins");
        pin_seen[static_cast<std::size_t>(pin)] = 1;
      }
      const PrimId p = nl.add_primitive({kind, out_name, {}, kNoNet, 0});
      for (const auto& [pin, net] : ins) use_net(net, p, pin);
      drive_net(out_name, p);
    } else if (cmd == ".names") {
      if (tok.size() < 2) throw std::runtime_error("blif: malformed .names");
      const std::string out_name = tok.back();
      const int k = static_cast<int>(tok.size()) - 2;
      if (k > 6) throw std::runtime_error("blif: .names with more than 6 inputs");
      const PrimId p = nl.add_primitive({PrimKind::Lut, out_name, {}, kNoNet, 0});
      for (int i = 0; i < k; ++i) use_net(tok[static_cast<std::size_t>(i) + 1], p, i);
      // Consume truth rows.
      std::uint64_t truth = 0;
      while (li + 1 < lines.size() && lines[li + 1][0] != '.') {
        ++li;
        const auto row = tokens_of(lines[li]);
        if (row.size() != (k == 0 ? 1u : 2u))
          throw std::runtime_error("blif: bad truth row at line " + std::to_string(li));
        const std::string& bits = k == 0 ? "" : row[0];
        const std::string& val = row.back();
        if (val != "1") throw std::runtime_error("blif: only onset rows supported");
        if (static_cast<int>(bits.size()) != k)
          throw std::runtime_error("blif: truth row width mismatch");
        // Expand don't-cares recursively.
        std::vector<int> minterms{0};
        for (int b = 0; b < k; ++b) {
          const char cbit = bits[static_cast<std::size_t>(b)];
          if (cbit != '0' && cbit != '1' && cbit != '-')
            throw std::runtime_error(std::string("blif: bad truth-row character '") +
                                     cbit + "'");
          std::vector<int> next;
          for (int m : minterms) {
            if (cbit == '0' || cbit == '-') next.push_back(m);
            if (cbit == '1' || cbit == '-') next.push_back(m | (1 << b));
          }
          minterms = std::move(next);
        }
        for (int m : minterms) truth |= (1ULL << m);
      }
      if (k == 0) truth = 1;  // constant-1 .names
      nl.prim(p).truth = truth;
      drive_net(out_name, p);
    } else {
      throw std::runtime_error("blif: unsupported construct " + cmd);
    }
  }

  // Primary outputs: one Output primitive per declared name.
  for (const std::string& name : output_names) {
    const PrimId p = nl.add_primitive({PrimKind::Output, name + "_po", {}, kNoNet, 0});
    use_net(name, p, 0);
  }
  if (!pending.empty())
    throw std::runtime_error("blif: undriven net " + pending.begin()->first);
  return nl;
}

std::string to_blif_string(const Netlist& nl) {
  std::ostringstream ss;
  write_blif(nl, ss);
  return ss.str();
}

Netlist from_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return read_blif(ss);
}

}  // namespace taf::netlist

#include "runner/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace taf::runner {

/// Completion state shared by all tasks of one parallel_for call.
struct ThreadPool::Batch {
  explicit Batch(std::size_t n) : remaining(n) {}

  std::atomic<std::size_t> remaining;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first error wins; guarded by mutex

  void record_error(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!error) error = std::move(err);
  }

  void finish_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }

  bool done() const { return remaining.load(std::memory_order_acquire) == 0; }
};

struct ThreadPool::Task {
  std::shared_ptr<Batch> batch;
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t index = 0;

  void run() {
    try {
      (*body)(index);
    } catch (...) {
      batch->record_error(std::current_exception());
    }
    batch->finish_one();
  }
};

int ThreadPool::hardware_default() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_default();
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) executors_.push_back(std::make_unique<Executor>());
  // Executor 0 is the caller of parallel_for; the rest get worker threads.
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::push_task(std::size_t executor, Task task) {
  {
    std::lock_guard<std::mutex> lock(executors_[executor]->mutex);
    executors_[executor]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++tasks_queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::run_one(std::size_t self) {
  Task task;
  bool found = false;
  {  // Own deque first, newest task (LIFO keeps caches warm).
    Executor& mine = *executors_[self];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.deque.empty()) {
      task = std::move(mine.deque.back());
      mine.deque.pop_back();
      found = true;
    }
  }
  for (std::size_t k = 1; !found && k < executors_.size(); ++k) {
    // Steal oldest task from a peer (FIFO keeps stolen work coarse).
    Executor& victim = *executors_[(self + k) % executors_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      task = std::move(victim.deque.front());
      victim.deque.pop_front();
      found = true;
    }
  }
  if (!found) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --tasks_queued_;
  }
  task.run();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    if (run_one(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || tasks_queued_ > 0; });
    if (stop_ && tasks_queued_ == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (executors_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>(n);
  for (std::size_t i = 0; i < n; ++i) {
    push_task(i % executors_.size(), Task{batch, &body, i});
  }
  wake_cv_.notify_all();

  // The caller works too (as executor 0); once no runnable task is left it
  // waits for in-flight tasks on other executors to drain.
  while (!batch->done()) {
    if (run_one(0)) continue;
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait_for(lock, std::chrono::milliseconds(2),
                            [&] { return batch->done(); });
  }
  {
    std::lock_guard<std::mutex> lock(batch->mutex);
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

}  // namespace taf::runner

#pragma once
// Thread-safe, process-wide cache of the expensive flow artifacts:
// characterizers, characterized device models, and implemented (packed/
// placed/routed) benchmarks. Replaces the per-binary static caches the
// bench helpers used to keep, so concurrent sweep tasks — and the
// different experiments of one bench_all run — share work instead of
// redoing it.
//
// Keys:
//  * characterizers: {tech-hash, arch-hash}
//  * device models:  {tech-hash, arch-hash, quantize_t_opt(t_opt_c)} —
//    the corner is quantized to millidegrees, never compared as a raw
//    double (26.999999999 and 27.0 hit the same entry)
//  * implementations: {spec-hash (name + resource mix), seed, scale bits,
//    arch-hash}
//
// Entries are built exactly once: concurrent requests for the same key
// block until the first builder finishes, requests for different keys
// build in parallel. Entries are heap-pinned and never evicted, so the
// returned references stay valid for the cache's lifetime.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "coffe/device_model.hpp"
#include "core/flow.hpp"
#include "netlist/benchmarks.hpp"
#include "tech/technology.hpp"

namespace taf::runner {

class ArtifactStore;

/// Order-sensitive FNV-1a style hash of the architecture parameters.
std::uint64_t arch_hash(const arch::ArchParams& arch);
/// Hash of the technology corner.
std::uint64_t tech_hash(const tech::Technology& tech);

class FlowCache {
 public:
  struct Stats {
    std::uint64_t device_hits = 0;
    std::uint64_t device_misses = 0;
    std::uint64_t impl_hits = 0;
    std::uint64_t impl_misses = 0;
    // Disk tier (all zero when no artifact store is attached). These are
    // per-*stage* counters — one implementation build probes up to four
    // storable stages — and are only ever incremented inside a build, so
    // an in-memory hit never touches them (no double counting).
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_misses = 0;
    std::uint64_t disk_writes = 0;
    std::uint64_t disk_errors = 0;
  };

  FlowCache() = default;
  FlowCache(const FlowCache&) = delete;
  FlowCache& operator=(const FlowCache&) = delete;

  /// The process-wide instance shared by the bench binaries.
  static FlowCache& global();

  /// Millidegree quantization of a device design corner.
  static std::int64_t quantize_t_opt(double t_opt_c);

  /// Characterizer for a technology/architecture pair (its constructor
  /// synthesizes the calibration reference, so it is worth sharing).
  const coffe::Characterizer& characterizer(const tech::Technology& tech,
                                            const arch::ArchParams& arch);

  /// Characterized device model for a design corner.
  const coffe::DeviceModel& device(const tech::Technology& tech,
                                   const arch::ArchParams& arch, double t_opt_c);

  /// Implemented benchmark at `scale`. `opt.observer` (if any) only fires
  /// for the call that actually builds the entry; cache hits are silent.
  /// When an artifact store is attached and `opt.stage_hooks` is unset,
  /// the build consults the disk tier stage by stage.
  const core::Implementation& implementation(const netlist::BenchmarkSpec& spec,
                                             const arch::ArchParams& arch,
                                             double scale,
                                             const core::ImplementOptions& opt = {});

  /// Attach (or detach, with nullptr) the disk tier. Not owned; must
  /// outlive the cache's use. The disk tier is consulted only inside
  /// implementation() builds — i.e. only after an in-memory miss — so
  /// in-memory hit/miss accounting is unchanged by attaching a store.
  void set_artifact_store(ArtifactStore* store) { store_ = store; }
  ArtifactStore* artifact_store() const { return store_; }

  Stats stats() const;

  /// Drop all entries and reset the counters. Invalidates every reference
  /// previously returned — test/tooling use only.
  void clear();

 private:
  template <typename V>
  struct Slot {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool ready = false;              // guarded by mutex
    std::exception_ptr error;        // guarded by mutex
    std::unique_ptr<V> value;        // written once before ready
  };

  /// Build-once lookup: returns the slot value, constructing it via
  /// build() if this call is the first for `key`.
  template <typename V, typename Build>
  const V& get_or_build(std::unordered_map<std::uint64_t, std::unique_ptr<Slot<V>>>& map,
                        std::uint64_t key, std::atomic<std::uint64_t>* hits,
                        std::atomic<std::uint64_t>* misses, const Build& build);

  mutable std::mutex map_mutex_;  // guards the three maps' structure
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot<coffe::Characterizer>>> characterizers_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot<coffe::DeviceModel>>> devices_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot<core::Implementation>>> impls_;

  std::atomic<std::uint64_t> device_hits_{0};
  std::atomic<std::uint64_t> device_misses_{0};
  std::atomic<std::uint64_t> impl_hits_{0};
  std::atomic<std::uint64_t> impl_misses_{0};

  std::atomic<ArtifactStore*> store_{nullptr};  // not owned
};

}  // namespace taf::runner

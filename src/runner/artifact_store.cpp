#include "runner/artifact_store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/codec.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace taf::runner {

namespace fs = std::filesystem;

ArtifactCounters& thread_artifact_counters() {
  thread_local ArtifactCounters counters;
  return counters;
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw std::runtime_error("ArtifactStore: cannot create directory '" + root_ +
                             "': " + ec.message());
  }
}

std::unique_ptr<ArtifactStore> ArtifactStore::from_env() {
  const char* dir = util::env_cstr("TAF_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_unique<ArtifactStore>(dir);
}

std::string ArtifactStore::path_for(std::string_view kind, std::uint64_t key) const {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(key));
  std::string path = root_;
  path += '/';
  path.append(kind);
  path += '-';
  path += hex;
  path += ".taf";
  return path;
}

void ArtifactStore::warn_once(const std::string& path, const char* what) {
  {
    const std::lock_guard<std::mutex> lock(warned_mutex_);
    if (!warned_.insert(path).second) return;
  }
  util::log_warn("artifact store: rejecting %s (%s); treating as cache miss",
                 path.c_str(), what);
}

bool ArtifactStore::load(std::string_view kind, std::uint64_t key,
                         std::string& payload) {
  const std::string path = path_for(kind, key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++thread_artifact_counters().disk_misses;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    warn_once(path, "read error");
    errors_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++thread_artifact_counters().disk_misses;
    return false;
  }
  const std::string file = buf.str();  // unwrap returns a view into this
  try {
    payload = std::string(util::codec::unwrap(file, kind));
  } catch (const util::codec::Error& e) {
    warn_once(path, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++thread_artifact_counters().disk_misses;
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++thread_artifact_counters().disk_hits;
  return true;
}

void ArtifactStore::save(std::string_view kind, std::uint64_t key,
                         std::string_view payload) {
  const std::string path = path_for(kind, key);
  // Unique temp name per writer: concurrent saves of the same key write
  // identical bytes, and whichever rename lands last wins.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
  const std::string file = util::codec::wrap(kind, payload);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out.good()) {
      util::log_warn("artifact store: write to %s failed; artifact not stored",
                     tmp.c_str());
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    util::log_warn("artifact store: rename %s -> %s failed (%s); artifact not stored",
                   tmp.c_str(), path.c_str(), ec.message().c_str());
    fs::remove(tmp, ec);
    return;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  ++thread_artifact_counters().disk_writes;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  Stats s;
  s.disk_hits = hits_.load(std::memory_order_relaxed);
  s.disk_misses = misses_.load(std::memory_order_relaxed);
  s.disk_writes = writes_.load(std::memory_order_relaxed);
  s.disk_errors = errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace taf::runner

#pragma once
// Sweep executor: fans a (benchmark x device grade x ambient) grid of
// guardbanding runs out across a thread pool, sharing implementations and
// device models through a FlowCache. Results come back indexed exactly
// like the input points — a deterministic reduction order — and each cell
// carries its own TaskMetrics, so a parallel sweep reproduces the serial
// sweep's numbers bit for bit while reporting where the time went.

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/benchmarks.hpp"
#include "runner/flow_cache.hpp"
#include "runner/metrics.hpp"
#include "runner/thread_pool.hpp"
#include "tech/technology.hpp"

namespace taf::runner {

/// One cell of a sweep grid.
struct SweepPoint {
  netlist::BenchmarkSpec spec;  ///< unscaled benchmark spec
  double scale = 1.0;
  arch::ArchParams arch;
  double t_opt_c = 25.0;  ///< device grade (design corner)
  core::GuardbandOptions guardband;
  std::string label;  ///< report label; derived from the cell if empty
};

struct SweepCellResult {
  core::GuardbandResult guardband;
  TaskMetrics metrics;
};

class Sweep {
 public:
  Sweep(FlowCache& cache, ThreadPool& pool, tech::Technology tech);

  /// Run every point; results[i] corresponds to points[i] regardless of
  /// the pool size or scheduling order.
  std::vector<SweepCellResult> run(const std::vector<SweepPoint>& points) const;

  /// Dense grid over specs x grades x ambients, row-major in that order.
  static std::vector<SweepPoint> grid(const std::vector<netlist::BenchmarkSpec>& specs,
                                      double scale, const arch::ArchParams& arch,
                                      const std::vector<double>& grades_t_opt_c,
                                      const std::vector<double>& ambients_c,
                                      const core::GuardbandOptions& base = {});

 private:
  FlowCache* cache_;
  ThreadPool* pool_;
  tech::Technology tech_;
};

}  // namespace taf::runner

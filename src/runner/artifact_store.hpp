#pragma once
// Versioned, content-addressed on-disk artifact store: the disk tier
// behind runner::FlowCache.
//
// Each flow-stage artifact (pack, place, route, activity — see
// core/stage_graph.hpp) is one file named <kind>-<16-hex-key>.taf, where
// the key is the stage's chained input hash (spec + seed + arch +
// options, folded through every upstream stage). Files carry the
// util/codec.hpp envelope {magic, codec version, kind, size, checksum};
// a corrupt, truncated, foreign or stale-version file is rejected by the
// envelope check and degrades to a clean cache miss with one warning per
// file — never a crash, and the recomputed artifact overwrites it.
//
// Writes are atomic (temp file + rename), so a killed process never
// leaves a half-written artifact under the final name: a rerun of
// bench_all against the same directory reloads every artifact the killed
// run completed and recomputes only the rest (checkpoint/resume).
//
// Thread-safe: hits/misses/writes are atomics, per-file warning dedup is
// under a mutex, and concurrent save() calls for the same key are
// idempotent (both write identical bytes; rename wins last).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace taf::runner {

/// Per-thread disk-tier counters, in the mold of spice::thread_counters():
/// the runner snapshots them around each task (ArtifactCounterScope).
struct ArtifactCounters {
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t disk_writes = 0;

  ArtifactCounters operator-(const ArtifactCounters& rhs) const {
    ArtifactCounters d;
    d.disk_hits = disk_hits - rhs.disk_hits;
    d.disk_misses = disk_misses - rhs.disk_misses;
    d.disk_writes = disk_writes - rhs.disk_writes;
    return d;
  }
};

/// Counters of the calling thread (thread-local; never contended).
ArtifactCounters& thread_artifact_counters();

class ArtifactStore {
 public:
  struct Stats {
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_misses = 0;   ///< includes rejected (corrupt) files
    std::uint64_t disk_writes = 0;
    std::uint64_t disk_errors = 0;   ///< rejected files (subset of misses)
  };

  /// Opens (and creates, if needed) the store directory. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit ArtifactStore(std::string root);
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Store rooted at $TAF_ARTIFACT_DIR, or nullptr when the variable is
  /// unset/empty (the disk tier is opt-in).
  static std::unique_ptr<ArtifactStore> from_env();

  const std::string& root() const { return root_; }

  /// Fetch the payload stored under (kind, key). Returns false on a
  /// miss; a present-but-invalid file (truncated, corrupt, version or
  /// kind mismatch) warns once per file, counts as disk_errors + a miss,
  /// and returns false.
  bool load(std::string_view kind, std::uint64_t key, std::string& payload);

  /// Atomically store a payload under (kind, key), wrapping it in the
  /// codec envelope. IO failures warn and are otherwise ignored (the
  /// store is a cache, not a system of record).
  void save(std::string_view kind, std::uint64_t key, std::string_view payload);

  Stats stats() const;

 private:
  std::string path_for(std::string_view kind, std::uint64_t key) const;
  void warn_once(const std::string& path, const char* what);

  std::string root_;
  mutable std::mutex warned_mutex_;
  std::unordered_set<std::string> warned_;  // guarded by warned_mutex_
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace taf::runner

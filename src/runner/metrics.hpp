#pragma once
// Structured instrumentation for runner tasks: per-task wall time, CAD
// phase breakdown (fed by core::FlowObserver), Algorithm 1 iteration
// counts, and the flow-cache hit/miss counters — serialized as JSON or
// CSV so sweeps are machine-analysable (EXPERIMENTS.md documents the
// format).

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "runner/artifact_store.hpp"
#include "runner/flow_cache.hpp"
#include "spice/linear.hpp"

namespace taf::runner {

/// Accumulated seconds per CAD/analysis phase.
struct PhaseTimes {
  std::array<double, core::kNumFlowPhases> seconds{};

  void add(core::FlowPhase phase, double s) {
    seconds[static_cast<std::size_t>(phase)] += s;
  }
  double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }
};

/// One unit of runner work: an implement/characterize warm-up task, a
/// guardband sweep cell, or a whole experiment.
struct TaskMetrics {
  std::string name;
  std::string kind;  ///< "implement" | "characterize" | "guardband" | "experiment"
  double wall_s = 0.0;
  int iterations = 0;  ///< Algorithm 1 iterations (guardband tasks)
  PhaseTimes phases;
  /// SPICE linear-solver work performed by this task (see EXPERIMENTS.md):
  /// numeric factorizations, how many reused a previously analyzed
  /// sparsity pattern, and total Newton iterations.
  std::uint64_t spice_factorizations = 0;
  std::uint64_t spice_pattern_reuses = 0;
  std::uint64_t spice_newton_iters = 0;
  /// Incremental guardband engine work (see EXPERIMENTS.md): connection
  /// delays re-derived vs served from cache across the Algorithm 1 loop,
  /// total thermal CG iterations, and guardband runs that exhausted
  /// max_iterations without reaching the delta_t_c fixed point.
  std::uint64_t sta_edges_reevaluated = 0;
  std::uint64_t sta_delay_cache_hits = 0;
  std::uint64_t thermal_cg_iters = 0;
  /// Subset of thermal_cg_iters run preconditioned (stencil SSOR-PCG);
  /// zero under the generic oracle backend.
  std::uint64_t thermal_precond_iters = 0;
  /// Transient-engine work (DynamicGuardband trace replays): backward-
  /// Euler steps taken and the CG iterations they cost, kept apart from
  /// the steady-state thermal counters above.
  std::uint64_t transient_steps = 0;
  std::uint64_t transient_cg_iters = 0;
  /// Place->thermal feedback work (thermal_place stage): adjoint solves
  /// and bounded re-place moves. Zero when the feature is off or the
  /// refined placement came from the artifact store.
  std::uint64_t thermal_adjoint_solves = 0;
  std::uint64_t replace_moves = 0;
  std::uint64_t guardband_nonconverged = 0;
  /// Disk artifact-store traffic attributable to this task (per stage:
  /// one implement build probes up to four storable stages). All zero
  /// when no store is attached.
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t disk_writes = 0;
};

/// RAII capture of the thread-local SPICE solver counters: snapshots at
/// construction and adds the delta to the task at scope exit. Valid
/// because a runner task executes on exactly one pool thread.
class SpiceCounterScope {
 public:
  explicit SpiceCounterScope(TaskMetrics& m)
      : m_(m), before_(spice::thread_counters()) {}
  ~SpiceCounterScope() {
    const spice::SolverCounters d = spice::thread_counters() - before_;
    m_.spice_factorizations += d.factorizations;
    m_.spice_pattern_reuses += d.pattern_reuses;
    m_.spice_newton_iters += d.newton_iterations;
  }
  SpiceCounterScope(const SpiceCounterScope&) = delete;
  SpiceCounterScope& operator=(const SpiceCounterScope&) = delete;

 private:
  TaskMetrics& m_;
  spice::SolverCounters before_;
};

/// RAII capture of the thread-local guardband flow counters, same
/// snapshot/delta contract as SpiceCounterScope.
class FlowCounterScope {
 public:
  explicit FlowCounterScope(TaskMetrics& m)
      : m_(m), before_(core::thread_flow_counters()) {}
  ~FlowCounterScope() {
    const core::FlowCounters d = core::thread_flow_counters() - before_;
    m_.sta_edges_reevaluated += d.sta_edges_reevaluated;
    m_.sta_delay_cache_hits += d.sta_delay_cache_hits;
    m_.thermal_cg_iters += d.thermal_cg_iterations;
    m_.thermal_precond_iters += d.thermal_precond_iterations;
    m_.transient_steps += d.transient_steps;
    m_.transient_cg_iters += d.transient_cg_iterations;
    m_.thermal_adjoint_solves += d.thermal_adjoint_solves;
    m_.replace_moves += d.replace_moves;
    m_.guardband_nonconverged += d.guardband_nonconverged;
  }
  FlowCounterScope(const FlowCounterScope&) = delete;
  FlowCounterScope& operator=(const FlowCounterScope&) = delete;

 private:
  TaskMetrics& m_;
  core::FlowCounters before_;
};

/// RAII capture of the thread-local artifact-store counters, same
/// snapshot/delta contract as SpiceCounterScope.
class ArtifactCounterScope {
 public:
  explicit ArtifactCounterScope(TaskMetrics& m)
      : m_(m), before_(thread_artifact_counters()) {}
  ~ArtifactCounterScope() {
    const ArtifactCounters d = thread_artifact_counters() - before_;
    m_.disk_hits += d.disk_hits;
    m_.disk_misses += d.disk_misses;
    m_.disk_writes += d.disk_writes;
  }
  ArtifactCounterScope(const ArtifactCounterScope&) = delete;
  ArtifactCounterScope& operator=(const ArtifactCounterScope&) = delete;

 private:
  TaskMetrics& m_;
  ArtifactCounters before_;
};

/// A full runner report: every task plus process-wide cache statistics.
struct RunReport {
  int threads = 1;
  double wall_s = 0.0;
  /// Run-level scalar metrics (throughput, latency percentiles, ...) in
  /// insertion order — the fleet simulator's p50/p99/qps live here.
  /// Serialized as a "scalars" object in to_json() and as one
  /// scalar,<name>,<value> row per entry at the top of to_csv().
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<TaskMetrics> tasks;
  FlowCache::Stats cache;

  std::string to_json() const;
  std::string to_csv() const;
};

/// Wires a FlowObserver into a TaskMetrics (phase times + iterations).
/// The observer must not outlive the metrics object.
core::FlowObserver observe_into(TaskMetrics& metrics);

}  // namespace taf::runner

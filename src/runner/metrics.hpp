#pragma once
// Structured instrumentation for runner tasks: per-task wall time, CAD
// phase breakdown (fed by core::FlowObserver), Algorithm 1 iteration
// counts, and the flow-cache hit/miss counters — serialized as JSON or
// CSV so sweeps are machine-analysable (EXPERIMENTS.md documents the
// format).

#include <array>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "runner/flow_cache.hpp"

namespace taf::runner {

/// Accumulated seconds per CAD/analysis phase.
struct PhaseTimes {
  std::array<double, core::kNumFlowPhases> seconds{};

  void add(core::FlowPhase phase, double s) {
    seconds[static_cast<std::size_t>(phase)] += s;
  }
  double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }
};

/// One unit of runner work: an implement/characterize warm-up task, a
/// guardband sweep cell, or a whole experiment.
struct TaskMetrics {
  std::string name;
  std::string kind;  ///< "implement" | "characterize" | "guardband" | "experiment"
  double wall_s = 0.0;
  int iterations = 0;  ///< Algorithm 1 iterations (guardband tasks)
  PhaseTimes phases;
};

/// A full runner report: every task plus process-wide cache statistics.
struct RunReport {
  int threads = 1;
  double wall_s = 0.0;
  std::vector<TaskMetrics> tasks;
  FlowCache::Stats cache;

  std::string to_json() const;
  std::string to_csv() const;
};

/// Wires a FlowObserver into a TaskMetrics (phase times + iterations).
/// The observer must not outlive the metrics object.
core::FlowObserver observe_into(TaskMetrics& metrics);

}  // namespace taf::runner

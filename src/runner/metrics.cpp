#include "runner/metrics.hpp"

#include <cstdio>

namespace taf::runner {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void append_phases_json(std::string& out, const PhaseTimes& phases) {
  out += '{';
  for (int p = 0; p < core::kNumFlowPhases; ++p) {
    if (p > 0) out += ',';
    out += '"';
    out += core::flow_phase_name(static_cast<core::FlowPhase>(p));
    out += "\":";
    out += fmt(phases.seconds[static_cast<std::size_t>(p)]);
  }
  out += '}';
}

}  // namespace

std::string RunReport::to_json() const {
  std::string out = "{\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"wall_s\": " + fmt(wall_s) + ",\n";
  out += "  \"cache\": {\"device_hits\": " + std::to_string(cache.device_hits) +
         ", \"device_misses\": " + std::to_string(cache.device_misses) +
         ", \"impl_hits\": " + std::to_string(cache.impl_hits) +
         ", \"impl_misses\": " + std::to_string(cache.impl_misses) +
         ", \"disk_hits\": " + std::to_string(cache.disk_hits) +
         ", \"disk_misses\": " + std::to_string(cache.disk_misses) +
         ", \"disk_writes\": " + std::to_string(cache.disk_writes) +
         ", \"disk_errors\": " + std::to_string(cache.disk_errors) + "},\n";
  out += "  \"scalars\": {";
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    append_escaped(out, scalars[i].first);
    out += "\": " + fmt(scalars[i].second);
  }
  out += "},\n";
  out += "  \"tasks\": [\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskMetrics& t = tasks[i];
    out += "    {\"name\": \"";
    append_escaped(out, t.name);
    out += "\", \"kind\": \"";
    append_escaped(out, t.kind);
    out += "\", \"wall_s\": " + fmt(t.wall_s) +
           ", \"iterations\": " + std::to_string(t.iterations) +
           ", \"spice_factorizations\": " + std::to_string(t.spice_factorizations) +
           ", \"spice_pattern_reuses\": " + std::to_string(t.spice_pattern_reuses) +
           ", \"spice_newton_iters\": " + std::to_string(t.spice_newton_iters) +
           ", \"sta_edges_reevaluated\": " + std::to_string(t.sta_edges_reevaluated) +
           ", \"sta_delay_cache_hits\": " + std::to_string(t.sta_delay_cache_hits) +
           ", \"thermal_cg_iters\": " + std::to_string(t.thermal_cg_iters) +
           ", \"thermal_precond_iters\": " + std::to_string(t.thermal_precond_iters) +
           ", \"transient_steps\": " + std::to_string(t.transient_steps) +
           ", \"transient_cg_iters\": " + std::to_string(t.transient_cg_iters) +
           ", \"thermal_adjoint_solves\": " + std::to_string(t.thermal_adjoint_solves) +
           ", \"replace_moves\": " + std::to_string(t.replace_moves) +
           ", \"guardband_nonconverged\": " + std::to_string(t.guardband_nonconverged) +
           ", \"disk_hits\": " + std::to_string(t.disk_hits) +
           ", \"disk_misses\": " + std::to_string(t.disk_misses) +
           ", \"disk_writes\": " + std::to_string(t.disk_writes) +
           ", \"phases\": ";
    append_phases_json(out, t.phases);
    out += i + 1 < tasks.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string RunReport::to_csv() const {
  std::string out =
      "name,kind,wall_s,iterations,spice_factorizations,spice_pattern_reuses,"
      "spice_newton_iters,sta_edges_reevaluated,sta_delay_cache_hits,"
      "thermal_cg_iters,thermal_precond_iters,transient_steps,transient_cg_iters,"
      "thermal_adjoint_solves,replace_moves,"
      "guardband_nonconverged,disk_hits,disk_misses,disk_writes";
  for (int p = 0; p < core::kNumFlowPhases; ++p) {
    out += ',';
    out += core::flow_phase_name(static_cast<core::FlowPhase>(p));
    out += "_s";
  }
  out += '\n';
  for (const auto& [name, value] : scalars) {
    out += "scalar," + name + ',' + fmt(value) + '\n';
  }
  for (const TaskMetrics& t : tasks) {
    out += t.name + ',' + t.kind + ',' + fmt(t.wall_s) + ',' +
           std::to_string(t.iterations) + ',' +
           std::to_string(t.spice_factorizations) + ',' +
           std::to_string(t.spice_pattern_reuses) + ',' +
           std::to_string(t.spice_newton_iters) + ',' +
           std::to_string(t.sta_edges_reevaluated) + ',' +
           std::to_string(t.sta_delay_cache_hits) + ',' +
           std::to_string(t.thermal_cg_iters) + ',' +
           std::to_string(t.thermal_precond_iters) + ',' +
           std::to_string(t.transient_steps) + ',' +
           std::to_string(t.transient_cg_iters) + ',' +
           std::to_string(t.thermal_adjoint_solves) + ',' +
           std::to_string(t.replace_moves) + ',' +
           std::to_string(t.guardband_nonconverged) + ',' +
           std::to_string(t.disk_hits) + ',' + std::to_string(t.disk_misses) + ',' +
           std::to_string(t.disk_writes);
    for (double s : t.phases.seconds) {
      out += ',';
      out += fmt(s);
    }
    out += '\n';
  }
  return out;
}

core::FlowObserver observe_into(TaskMetrics& metrics) {
  core::FlowObserver obs;
  obs.on_phase = [&metrics](core::FlowPhase phase, units::Seconds s) {
    metrics.phases.add(phase, s.value());
  };
  obs.on_iteration = [&metrics](const core::FlowObserver::IterationInfo& info) {
    metrics.iterations = info.iteration;
  };
  return obs;
}

}  // namespace taf::runner

#include "runner/flow_cache.hpp"

#include <bit>
#include <cmath>
#include <string_view>

namespace taf::runner {

namespace {

/// 64-bit FNV-1a, used as an order-sensitive field combiner. With the
/// handful of distinct corners/specs/arches a process touches, a 64-bit
/// key makes accidental collisions negligible.
struct Hasher {
  std::uint64_t state = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void add(std::uint64_t v) { bytes(&v, sizeof v); }
  void add(std::int64_t v) { bytes(&v, sizeof v); }
  void add(int v) { add(static_cast<std::int64_t>(v)); }
  void add(unsigned v) { add(static_cast<std::uint64_t>(v)); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

std::uint64_t spec_hash(const netlist::BenchmarkSpec& spec) {
  Hasher h;
  h.add(std::string_view(spec.name));
  h.add(spec.num_luts);
  h.add(spec.num_ffs);
  h.add(spec.num_brams);
  h.add(spec.num_dsps);
  h.add(spec.num_inputs);
  h.add(spec.num_outputs);
  h.add(spec.logic_depth);
  h.add(spec.ff_ratio);
  return h.state;
}

}  // namespace

std::uint64_t arch_hash(const arch::ArchParams& arch) {
  Hasher h;
  h.add(arch.lut_k);
  h.add(arch.cluster_n);
  h.add(arch.channel_tracks);
  h.add(arch.wire_segment_length);
  h.add(arch.cluster_inputs);
  h.add(arch.sb_mux_size);
  h.add(arch.cb_mux_size);
  h.add(arch.local_mux_size);
  h.add(arch.vdd);
  h.add(arch.vdd_low_power);
  h.add(arch.bram_words);
  h.add(arch.bram_width);
  h.add(arch.tile_edge_um);
  h.add(arch.max_channel_utilization);
  return h.state;
}

std::uint64_t tech_hash(const tech::Technology& tech) {
  Hasher h;
  h.add(tech.vdd);
  h.add(tech.vdd_lp);
  h.add(tech.lmin_um);
  for (int f = 0; f < tech::kNumFlavors; ++f) {
    const tech::MosfetParams& m = tech.flavors[f];
    h.add(m.vth0);
    h.add(m.vth_tc);
    h.add(m.mu_exp);
    h.add(m.alpha);
    h.add(m.k_drive);
    h.add(m.i_off25);
    h.add(m.lkg_tc);
    h.add(m.c_gate);
    h.add(m.c_drain);
  }
  h.add(tech.wire_r_per_um25);
  h.add(tech.wire_r_tc);
  h.add(tech.wire_c_per_um);
  return h.state;
}

std::int64_t FlowCache::quantize_t_opt(double t_opt_c) {
  return std::llround(t_opt_c * 1000.0);
}

FlowCache& FlowCache::global() {
  static FlowCache cache;
  return cache;
}

template <typename V, typename Build>
const V& FlowCache::get_or_build(
    std::unordered_map<std::uint64_t, std::unique_ptr<Slot<V>>>& map, std::uint64_t key,
    std::atomic<std::uint64_t>* hits, std::atomic<std::uint64_t>* misses,
    const Build& build) {
  Slot<V>* slot = nullptr;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    auto& entry = map[key];
    if (entry == nullptr) {
      entry = std::make_unique<Slot<V>>();
      builder = true;
    }
    slot = entry.get();
  }
  if (builder) {
    if (misses != nullptr) misses->fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<V> value;
    std::exception_ptr error;
    try {
      value = build();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(slot->mutex);
      slot->value = std::move(value);
      slot->error = error;
      slot->ready = true;
    }
    slot->ready_cv.notify_all();
  } else {
    if (hits != nullptr) hits->fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(slot->mutex);
  slot->ready_cv.wait(lock, [slot] { return slot->ready; });
  if (slot->error) std::rethrow_exception(slot->error);
  return *slot->value;
}

const coffe::Characterizer& FlowCache::characterizer(const tech::Technology& tech,
                                                     const arch::ArchParams& arch) {
  Hasher h;
  h.add(tech_hash(tech));
  h.add(arch_hash(arch));
  return get_or_build(characterizers_, h.state, nullptr, nullptr, [&] {
    return std::make_unique<coffe::Characterizer>(tech, arch);
  });
}

const coffe::DeviceModel& FlowCache::device(const tech::Technology& tech,
                                            const arch::ArchParams& arch,
                                            double t_opt_c) {
  Hasher h;
  h.add(tech_hash(tech));
  h.add(arch_hash(arch));
  h.add(quantize_t_opt(t_opt_c));
  return get_or_build(devices_, h.state, &device_hits_, &device_misses_, [&] {
    const coffe::Characterizer& ch = characterizer(tech, arch);
    return std::make_unique<coffe::DeviceModel>(
        ch.characterize(units::Celsius{t_opt_c}));
  });
}

const core::Implementation& FlowCache::implementation(const netlist::BenchmarkSpec& spec,
                                                      const arch::ArchParams& arch,
                                                      double scale,
                                                      const core::ImplementOptions& opt) {
  Hasher h;
  h.add(spec_hash(spec));
  h.add(opt.seed);
  h.add(scale);
  h.add(arch_hash(arch));
  // Every option that changes the implementation must be in the key.
  h.add(opt.place_effort);
  h.add(opt.route.max_iterations);
  h.add(opt.route.first_iter_pres_fac);
  h.add(opt.route.pres_fac_mult);
  h.add(opt.route.hist_fac);
  h.add(opt.route.astar_fac);
  return get_or_build(impls_, h.state, &impl_hits_, &impl_misses_, [&] {
    return core::implement(netlist::scaled(spec, scale), arch, opt);
  });
}

FlowCache::Stats FlowCache::stats() const {
  Stats s;
  s.device_hits = device_hits_.load(std::memory_order_relaxed);
  s.device_misses = device_misses_.load(std::memory_order_relaxed);
  s.impl_hits = impl_hits_.load(std::memory_order_relaxed);
  s.impl_misses = impl_misses_.load(std::memory_order_relaxed);
  return s;
}

void FlowCache::clear() {
  std::lock_guard<std::mutex> lock(map_mutex_);
  characterizers_.clear();
  devices_.clear();
  impls_.clear();
  device_hits_ = 0;
  device_misses_ = 0;
  impl_hits_ = 0;
  impl_misses_ = 0;
}

}  // namespace taf::runner

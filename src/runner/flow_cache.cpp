#include "runner/flow_cache.hpp"

#include <cmath>
#include <string>
#include <string_view>

#include "core/stage_graph.hpp"
#include "runner/artifact_store.hpp"
#include "util/hash.hpp"

namespace taf::runner {

// The cache's field combiner is the shared util::Fnv1a; spec and arch
// hashing live next to their structs (netlist::spec_hash,
// arch::params_hash) so the field lists cannot drift from the hashes.
using util::Fnv1a;
using Hasher = Fnv1a;

std::uint64_t arch_hash(const arch::ArchParams& arch) { return arch::params_hash(arch); }

std::uint64_t tech_hash(const tech::Technology& tech) {
  Hasher h;
  h.add(tech.vdd);
  h.add(tech.vdd_lp);
  h.add(tech.lmin_um);
  for (int f = 0; f < tech::kNumFlavors; ++f) {
    const tech::MosfetParams& m = tech.flavors[f];
    h.add(m.vth0);
    h.add(m.vth_tc);
    h.add(m.mu_exp);
    h.add(m.alpha);
    h.add(m.k_drive);
    h.add(m.i_off25);
    h.add(m.lkg_tc);
    h.add(m.c_gate);
    h.add(m.c_drain);
  }
  h.add(tech.wire_r_per_um25);
  h.add(tech.wire_r_tc);
  h.add(tech.wire_c_per_um);
  return h.state;
}

std::int64_t FlowCache::quantize_t_opt(double t_opt_c) {
  return std::llround(t_opt_c * 1000.0);
}

FlowCache& FlowCache::global() {
  static FlowCache cache;
  return cache;
}

template <typename V, typename Build>
const V& FlowCache::get_or_build(
    std::unordered_map<std::uint64_t, std::unique_ptr<Slot<V>>>& map, std::uint64_t key,
    std::atomic<std::uint64_t>* hits, std::atomic<std::uint64_t>* misses,
    const Build& build) {
  Slot<V>* slot = nullptr;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    auto& entry = map[key];
    if (entry == nullptr) {
      entry = std::make_unique<Slot<V>>();
      builder = true;
    }
    slot = entry.get();
  }
  if (builder) {
    if (misses != nullptr) misses->fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<V> value;
    std::exception_ptr error;
    try {
      value = build();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(slot->mutex);
      slot->value = std::move(value);
      slot->error = error;
      slot->ready = true;
    }
    slot->ready_cv.notify_all();
  } else {
    if (hits != nullptr) hits->fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(slot->mutex);
  slot->ready_cv.wait(lock, [slot] { return slot->ready; });
  if (slot->error) std::rethrow_exception(slot->error);
  return *slot->value;
}

const coffe::Characterizer& FlowCache::characterizer(const tech::Technology& tech,
                                                     const arch::ArchParams& arch) {
  Hasher h;
  h.add(tech_hash(tech));
  h.add(arch_hash(arch));
  return get_or_build(characterizers_, h.state, nullptr, nullptr, [&] {
    return std::make_unique<coffe::Characterizer>(tech, arch);
  });
}

const coffe::DeviceModel& FlowCache::device(const tech::Technology& tech,
                                            const arch::ArchParams& arch,
                                            double t_opt_c) {
  Hasher h;
  h.add(tech_hash(tech));
  h.add(arch_hash(arch));
  h.add(quantize_t_opt(t_opt_c));
  return get_or_build(devices_, h.state, &device_hits_, &device_misses_, [&] {
    const coffe::Characterizer& ch = characterizer(tech, arch);
    return std::make_unique<coffe::DeviceModel>(
        ch.characterize(units::Celsius{t_opt_c}));
  });
}

const core::Implementation& FlowCache::implementation(const netlist::BenchmarkSpec& spec,
                                                      const arch::ArchParams& arch,
                                                      double scale,
                                                      const core::ImplementOptions& opt) {
  Hasher h;
  h.add(netlist::spec_hash(spec));
  h.add(opt.seed);
  h.add(scale);
  h.add(arch_hash(arch));
  // Every option that changes the implementation must be in the key.
  h.add(opt.place_effort);
  h.add(opt.route.max_iterations);
  h.add(opt.route.first_iter_pres_fac);
  h.add(opt.route.pres_fac_mult);
  h.add(opt.route.hist_fac);
  h.add(opt.route.astar_fac);
  h.add(opt.thermal_place.enabled ? 1 : 0);
  if (opt.thermal_place.enabled) {
    const core::ThermalPlaceOptions& tp = opt.thermal_place;
    h.add(tp.weight);
    h.add(tp.passes);
    h.add(tp.effort);
    h.add(tp.max_rounds);
    h.add(tp.smooth_tau_k.value());
    h.add(tp.pricing_f_mhz.value());
    h.add(tp.pricing_temp_c.value());
    h.add(tp.thermal.silicon_k_w_mk);
    h.add(tp.thermal.die_thickness_um);
    h.add(tp.thermal.tile_edge_um);
    h.add(tp.thermal.package_r_k_per_w);
    if (tp.device != nullptr) {
      h.add(std::string_view(tp.device->name));
      h.add(tp.device->t_opt_c.value());
    }
  }
  return get_or_build(impls_, h.state, &impl_hits_, &impl_misses_, [&] {
    // Disk tier: consulted only here, inside a build — i.e. only after an
    // in-memory miss — keyed per stage by the stage graph's chained input
    // hash. A caller-supplied stage_hooks takes precedence.
    ArtifactStore* store = store_.load(std::memory_order_acquire);
    core::ImplementOptions iopt = opt;
    core::StageHooks hooks;
    if (store != nullptr && iopt.stage_hooks == nullptr) {
      hooks.fetch = [store](const core::FlowStage& s, std::string& payload) {
        return store->load(s.name, s.input_hash, payload);
      };
      hooks.store = [store](const core::FlowStage& s, const std::string& payload) {
        store->save(s.name, s.input_hash, payload);
      };
      iopt.stage_hooks = &hooks;
    }
    return core::implement(netlist::scaled(spec, scale), arch, iopt);
  });
}

FlowCache::Stats FlowCache::stats() const {
  Stats s;
  s.device_hits = device_hits_.load(std::memory_order_relaxed);
  s.device_misses = device_misses_.load(std::memory_order_relaxed);
  s.impl_hits = impl_hits_.load(std::memory_order_relaxed);
  s.impl_misses = impl_misses_.load(std::memory_order_relaxed);
  if (const ArtifactStore* store = store_.load(std::memory_order_acquire)) {
    const ArtifactStore::Stats d = store->stats();
    s.disk_hits = d.disk_hits;
    s.disk_misses = d.disk_misses;
    s.disk_writes = d.disk_writes;
    s.disk_errors = d.disk_errors;
  }
  return s;
}

void FlowCache::clear() {
  std::lock_guard<std::mutex> lock(map_mutex_);
  characterizers_.clear();
  devices_.clear();
  impls_.clear();
  device_hits_ = 0;
  device_misses_ = 0;
  impl_hits_ = 0;
  impl_misses_ = 0;
}

}  // namespace taf::runner

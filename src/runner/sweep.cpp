#include "runner/sweep.hpp"

#include <cstdio>
#include <utility>

#include "util/timer.hpp"

namespace taf::runner {

Sweep::Sweep(FlowCache& cache, ThreadPool& pool, tech::Technology tech)
    : cache_(&cache), pool_(&pool), tech_(std::move(tech)) {}

std::vector<SweepCellResult> Sweep::run(const std::vector<SweepPoint>& points) const {
  std::vector<SweepCellResult> results(points.size());
  pool_->parallel_for(points.size(), [&](std::size_t i) {
    const SweepPoint& p = points[i];
    SweepCellResult& cell = results[i];
    if (p.label.empty()) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s@D%g/amb%g", p.spec.name.c_str(), p.t_opt_c,
                    p.guardband.t_amb_c.value());
      cell.metrics.name = buf;
    } else {
      cell.metrics.name = p.label;
    }
    cell.metrics.kind = "guardband";
    const core::FlowObserver obs = observe_into(cell.metrics);
    const SpiceCounterScope spice_scope(cell.metrics);
    const FlowCounterScope flow_scope(cell.metrics);
    const ArtifactCounterScope artifact_scope(cell.metrics);
    util::Stopwatch wall;

    // Cache misses attribute the build (characterize / implement) phases
    // to the first cell that needs the artifact.
    const coffe::DeviceModel& dev = cache_->device(tech_, p.arch, p.t_opt_c);
    core::ImplementOptions iopt;
    iopt.observer = &obs;
    const core::Implementation& impl =
        cache_->implementation(p.spec, p.arch, p.scale, iopt);

    core::GuardbandOptions gopt = p.guardband;
    gopt.observer = &obs;
    cell.guardband = core::guardband(impl, dev, gopt);
    cell.metrics.wall_s = wall.seconds();
  });
  return results;
}

std::vector<SweepPoint> Sweep::grid(const std::vector<netlist::BenchmarkSpec>& specs,
                                    double scale, const arch::ArchParams& arch,
                                    const std::vector<double>& grades_t_opt_c,
                                    const std::vector<double>& ambients_c,
                                    const core::GuardbandOptions& base) {
  std::vector<SweepPoint> points;
  points.reserve(specs.size() * grades_t_opt_c.size() * ambients_c.size());
  for (const netlist::BenchmarkSpec& spec : specs) {
    for (double grade : grades_t_opt_c) {
      for (double ambient : ambients_c) {
        SweepPoint p;
        p.spec = spec;
        p.scale = scale;
        p.arch = arch;
        p.t_opt_c = grade;
        p.guardband = base;
        p.guardband.t_amb_c = units::Celsius{ambient};
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

}  // namespace taf::runner

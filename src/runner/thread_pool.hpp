#pragma once
// Work-stealing thread pool for the experiment runner.
//
// Each executor (the caller plus `threads - 1` workers) owns a deque:
// owners push/pop at the back, idle executors steal from the front of
// their peers. parallel_for() blocks until every task of its batch has
// finished and rethrows the first exception a task raised. The calling
// thread participates in the work, so ThreadPool(1) spawns no threads at
// all and runs everything inline — the deterministic serial reference the
// sweep tests compare against.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace taf::runner {

class ThreadPool {
 public:
  /// `threads` executors in total; 0 picks hardware_default().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(executors_.size()); }

  /// Run body(i) for every i in [0, n), fanned out over the executors.
  /// Blocks until all iterations finished; rethrows the first exception.
  /// Safe to call concurrently from several threads (batches interleave).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  static int hardware_default();

 private:
  struct Task;
  struct Batch;
  struct Executor {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void push_task(std::size_t executor, Task task);
  bool run_one(std::size_t self);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Executor>> executors_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t tasks_queued_ = 0;  // guarded by wake_mutex_
  bool stop_ = false;             // guarded by wake_mutex_
};

}  // namespace taf::runner

#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace taf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print(FILE* out) const { std::fputs(to_string().c_str(), out); }

}  // namespace taf::util

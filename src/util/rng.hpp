#pragma once
// Deterministic PCG32 random number generator.
//
// Every stochastic stage of the flow (benchmark generation, placement
// annealing, Monte-Carlo Vth sampling) takes an explicit Rng so that runs
// are reproducible from a seed and independent of std:: library versions.

#include <cstdint>
#include <cmath>

namespace taf::util {

/// PCG32 (O'Neill 2014): small, fast, statistically solid generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() { return next_u32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box–Muller (one value per call; no caching for simplicity).
  double normal() {
    double u1 = next_double();
    while (u1 <= 1e-12) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  bool bernoulli(double p) { return next_double() < p; }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace taf::util

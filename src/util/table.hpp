#pragma once
// ASCII table printer used by the bench binaries to emit the paper's
// tables and figure series as aligned rows.

#include <cstdio>
#include <string>
#include <vector>

namespace taf::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);
  /// Format as a percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  /// Render the table to a string (markdown-ish, pipe separated, aligned).
  std::string to_string() const;
  /// Print to stdout.
  void print(FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace taf::util

#include "util/stats.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace taf::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double ExpFit::operator()(double x) const noexcept { return scale * std::exp(rate * x); }

namespace {
/// Core least squares on (x, y); returns {intercept, slope, r2}.
LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) {
    fit.intercept = n == 1 ? y[0] : 0.0;
    return fit;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::fabs(denom) < std::numeric_limits<double>::min()) {
    fit.intercept = sy / dn;
    return fit;
  }
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;

  const double ymean = sy / dn;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}
}  // namespace

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  return least_squares(x, y);
}

ExpFit fit_exponential(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_exponential: x/y size mismatch");
  }
  std::vector<double> logy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Must hold in release builds too: log(<=0) would silently poison the
    // fit with NaN/-inf.
    if (!(y[i] > 0.0)) {
      throw std::invalid_argument("fit_exponential: samples must be positive");
    }
    logy[i] = std::log(y[i]);
  }
  const LinearFit lf = least_squares(x, logy);
  ExpFit fit;
  fit.scale = std::exp(lf.intercept);
  fit.rate = lf.slope;
  fit.r2 = lf.r2;
  return fit;
}

double integrate_trapezoid(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double area = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    area += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return area;
}

double mean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geomean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) {
    if (!(x > 0.0)) {
      throw std::invalid_argument("geomean_of: samples must be positive");
    }
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

}  // namespace taf::util

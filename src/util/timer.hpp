#pragma once
// Monotonic wall-clock timers for flow instrumentation. The runner uses
// these to attribute sweep time to CAD phases (pack/place/route/STA/
// power/thermal) in its machine-readable reports.

#include <chrono>

namespace taf::util {

/// Simple monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed, then restart — for timing consecutive phases.
  double lap() {
    const auto now = clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace taf::util

#include "util/log.hpp"

#include <atomic>
#include <cstdarg>

namespace taf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info: return "[info ] ";
    case LogLevel::Warn: return "[warn ] ";
    case LogLevel::Error: return "[error] ";
    case LogLevel::Silent: return "";
  }
  return "";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::fputs(prefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace taf::util

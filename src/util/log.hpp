#pragma once
// Lightweight leveled logger used across the library.
//
// The flow binaries (benches, examples) print their results through the
// table printer; the logger is for diagnostics and progress only, so it
// writes to stderr and can be silenced globally.

#include <cstdio>
#include <string>

namespace taf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Debug, fmt, args...);
}
template <typename... Args>
void log_info(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Info, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Warn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Error, fmt, args...);
}

/// RAII guard that silences logging for the current scope (used in tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : prev_(log_level()) { set_log_level(level); }
  ~ScopedLogLevel() { set_log_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace taf::util

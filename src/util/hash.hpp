#pragma once
// Order-sensitive 64-bit FNV-1a field combiner, shared by the runner's
// flow-cache keys and the core stage graph's per-stage input hashes.
// With the handful of distinct corners/specs/arches a process touches, a
// 64-bit key makes accidental collisions negligible.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace taf::util {

struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void add(std::uint64_t v) { bytes(&v, sizeof v); }
  void add(std::int64_t v) { bytes(&v, sizeof v); }
  void add(int v) { add(static_cast<std::int64_t>(v)); }
  void add(unsigned v) { add(static_cast<std::uint64_t>(v)); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

/// One-shot FNV-1a of a byte range (artifact payload checksums).
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t n) {
  Fnv1a h;
  h.bytes(data, n);
  return h.state;
}

}  // namespace taf::util

#pragma once
// Single sanctioned doorway to process environment variables.
//
// Every TAF_* knob (TAF_INCREMENTAL, TAF_SPICE_BACKEND, ...) is read
// through these helpers so that a grep for util::env_cstr enumerates the
// complete environment surface of the library. tools/taf-lint enforces
// this: std::getenv anywhere outside src/util/env.cpp is a lint error
// (rule env-through-util).

namespace taf::util {

/// Raw value of an environment variable, or nullptr when unset.
const char* env_cstr(const char* name) noexcept;

/// True when the variable is set to a non-empty value.
bool env_set(const char* name) noexcept;

/// Positive integer value of the variable; `fallback` when unset or not
/// parseable as a positive integer.
int env_positive_int(const char* name, int fallback) noexcept;

}  // namespace taf::util

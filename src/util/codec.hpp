#pragma once
// Compact, versioned binary codec for on-disk flow artifacts.
//
// This header is the single sanctioned place where TAF values become
// bytes: tools/taf-lint (rule raw-serialization) bans fwrite/fread and
// memcpy-of-struct serialization everywhere else, so the artifact format
// cannot fork. Properties:
//
//   * explicit little-endian byte layout — no struct dumps, no padding,
//     no host-endianness in the files;
//   * doubles round-trip bit-exactly (IEEE-754 bits through u64), so
//     serialize -> deserialize -> re-serialize is byte-identical;
//   * every file is wrapped in an envelope {magic, codec version, kind
//     hash, payload size, payload checksum}. Readers validate all five
//     before touching the payload; any mismatch (truncation, corruption,
//     a stale version, a foreign file) throws codec::Error, which the
//     artifact store turns into a clean cache miss — never a crash.
//
// Bumping kVersion invalidates every artifact on disk at once; bump it
// whenever any serialize() layout changes (DESIGN.md section 10).

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace taf::util::codec {

/// Global artifact format version: covers the envelope and every
/// artifact payload layout. Readers reject any other value.
inline constexpr std::uint32_t kVersion = 1;

/// "TAFa" little-endian.
inline constexpr std::uint32_t kMagic = 0x61464154u;

/// Malformed/truncated/version-mismatched input. Message is diagnostic
/// only; callers degrade to a cache miss.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian encoder over a growable byte buffer.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s);
  }
  void i32_vec(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i32(x);
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder; throws codec::Error on any read
/// past the end (the truncation path of the corruption corpus).
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = length(u64());
    std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<int> i32_vec() {
    const std::uint64_t n = length(u64() * 4) / 4;
    std::vector<int> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(i32());
    return v;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = length(u64() * 8) / 8;
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Payloads must be consumed exactly; trailing bytes mean the layout
  /// drifted without a kVersion bump.
  void expect_done() const {
    if (!done()) throw Error("codec: trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw Error("codec: truncated input");
  }
  /// Validates a length prefix against the bytes actually present, so a
  /// corrupted huge count fails fast instead of triggering a giant
  /// allocation.
  std::uint64_t length(std::uint64_t byte_count) const {
    if (byte_count > data_.size() - pos_) throw Error("codec: length exceeds input");
    return byte_count;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Stable id of an artifact kind ("pack", "place", ...) in the envelope.
inline std::uint64_t kind_id(std::string_view kind) {
  Fnv1a h;
  h.add(kind);
  return h.state;
}

/// Wrap a payload in the versioned envelope. The result is what the
/// artifact store writes to disk, byte for byte.
inline std::string wrap(std::string_view kind, std::string_view payload) {
  Encoder e;
  e.u32(kMagic);
  e.u32(kVersion);
  e.u64(kind_id(kind));
  e.u64(payload.size());
  e.u64(fnv1a_bytes(payload.data(), payload.size()));
  std::string out = e.take();
  out.append(payload);
  return out;
}

/// Validate an envelope and return the payload. Throws codec::Error on
/// bad magic, version mismatch, kind mismatch, truncation, or a checksum
/// failure — the caller treats every one of these as a cache miss.
inline std::string_view unwrap(std::string_view file, std::string_view kind) {
  Decoder d(file);
  if (d.u32() != kMagic) throw Error("codec: bad magic");
  if (const std::uint32_t v = d.u32(); v != kVersion) {
    throw Error("codec: version " + std::to_string(v) + " != " +
                std::to_string(kVersion));
  }
  if (d.u64() != kind_id(kind)) throw Error("codec: artifact kind mismatch");
  const std::uint64_t size = d.u64();
  const std::uint64_t checksum = d.u64();
  if (d.remaining() != size) throw Error("codec: payload size mismatch");
  const std::string_view payload = file.substr(file.size() - d.remaining());
  if (fnv1a_bytes(payload.data(), payload.size()) != checksum) {
    throw Error("codec: payload checksum mismatch");
  }
  return payload;
}

}  // namespace taf::util::codec

#include "util/env.hpp"

#include <cstdlib>

namespace taf::util {

const char* env_cstr(const char* name) noexcept {
  // The one allowed std::getenv call site (taf-lint: env-through-util).
  return std::getenv(name);
}

bool env_set(const char* name) noexcept {
  const char* v = env_cstr(name);
  return v != nullptr && *v != '\0';
}

int env_positive_int(const char* name, int fallback) noexcept {
  const char* v = env_cstr(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || n <= 0 || n > 1'000'000) return fallback;
  return static_cast<int>(n);
}

}  // namespace taf::util

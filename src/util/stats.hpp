#pragma once
// Small statistics helpers: streaming accumulator, least-squares fits.
//
// The characterization flow measures delay/leakage on a 1 degC grid and then
// reports best-fit models (Table II of the paper uses a linear fit for delay
// and an exponential fit for leakage), so fitting lives here in util.

#include <cstddef>
#include <span>
#include <vector>

namespace taf::util {

/// Streaming mean/min/max/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// y ~= intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination of the fit

  double operator()(double x) const noexcept { return intercept + slope * x; }
};

/// y ~= scale * exp(rate * x). Fitted by linear regression in log space,
/// so all y must be > 0.
struct ExpFit {
  double scale = 1.0;
  double rate = 0.0;
  double r2 = 0.0;

  double operator()(double x) const noexcept;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);
ExpFit fit_exponential(std::span<const double> x, std::span<const double> y);

/// Trapezoidal integration of samples y(x) over monotonically increasing x.
double integrate_trapezoid(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean of a vector (0 for empty).
double mean_of(std::span<const double> v);

/// Geometric mean of a vector of positive values (0 for empty).
double geomean_of(std::span<const double> v);

}  // namespace taf::util

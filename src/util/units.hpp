#pragma once
// Zero-overhead strong physical-unit types for the thermal/timing/power
// flow (DESIGN.md section 9).
//
// Algorithm 1 iterates {timing -> power -> thermal} until the tile
// temperatures converge, and every hand-off crosses a unit boundary:
// Celsius vs Kelvin, seconds vs picoseconds, Watts vs microwatts. A
// mixup at any of them would not fail a test — it would converge the
// loop to a quietly wrong guardband. These types make such a mixup a
// compile error instead:
//
//   * every unit is a distinct type wrapping one double — same size,
//     same ABI, trivially copyable, constexpr throughout (the
//     static_asserts at the bottom of this header and the negative-
//     compilation harness in tests/ pin this down);
//   * construction from and extraction to raw double are explicit
//     (brace-init in, .value() out), so raw numbers only enter or leave
//     at a visible, greppable point;
//   * arithmetic is restricted to dimensionally valid operations:
//     same-unit sums, scalar scaling, same-unit ratios (dimensionless),
//     and a curated set of cross-unit products (Ohms * Farads = Seconds,
//     period <-> frequency, V^2 / R = Watts);
//   * temperature is affine: absolute Celsius and Kelvin *differences*
//     are different things. Celsius +/- Kelvin moves an absolute
//     temperature by a delta; Celsius - Celsius yields the delta; and
//     Celsius + Celsius does not compile. Conversion between the scales
//     is only through to_kelvin()/to_celsius().
//
// Bulk per-tile fields (temperature maps, power maps) deliberately stay
// std::vector<double>: they are solver payloads addressed by BLAS-style
// loops, and their producing/consuming APIs are typed at every scalar
// crossing. tools/taf-lint carries the justified suppression list.

namespace taf::util::units {

/// Generic linear (vector-space) quantity: a strong typedef over double
/// with dimensionally closed arithmetic. `Tag` only disambiguates types.
template <class Tag>
class Unit {
 public:
  constexpr Unit() noexcept = default;
  constexpr explicit Unit(double value) noexcept : v_(value) {}

  [[nodiscard]] constexpr double value() const noexcept { return v_; }

  constexpr Unit& operator+=(Unit r) noexcept { v_ += r.v_; return *this; }
  constexpr Unit& operator-=(Unit r) noexcept { v_ -= r.v_; return *this; }
  constexpr Unit& operator*=(double s) noexcept { v_ *= s; return *this; }
  constexpr Unit& operator/=(double s) noexcept { v_ /= s; return *this; }

  friend constexpr Unit operator+(Unit a, Unit b) noexcept { return Unit{a.v_ + b.v_}; }
  friend constexpr Unit operator-(Unit a, Unit b) noexcept { return Unit{a.v_ - b.v_}; }
  friend constexpr Unit operator-(Unit a) noexcept { return Unit{-a.v_}; }
  friend constexpr Unit operator*(Unit a, double s) noexcept { return Unit{a.v_ * s}; }
  friend constexpr Unit operator*(double s, Unit a) noexcept { return Unit{s * a.v_}; }
  friend constexpr Unit operator/(Unit a, double s) noexcept { return Unit{a.v_ / s}; }
  /// Ratio of like quantities is dimensionless.
  friend constexpr double operator/(Unit a, Unit b) noexcept { return a.v_ / b.v_; }

  friend constexpr bool operator==(Unit a, Unit b) noexcept { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Unit a, Unit b) noexcept { return a.v_ != b.v_; }
  friend constexpr bool operator<(Unit a, Unit b) noexcept { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Unit a, Unit b) noexcept { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Unit a, Unit b) noexcept { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Unit a, Unit b) noexcept { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

/// Temperature difference (and absolute thermodynamic temperature; the
/// flow only ever uses Kelvin as a delta — thresholds, margins, solver
/// tolerances — or transiently inside a physics formula).
using Kelvin = Unit<struct KelvinTag>;
using Watts = Unit<struct WattsTag>;
using Microwatts = Unit<struct MicrowattsTag>;
using Seconds = Unit<struct SecondsTag>;
using Picoseconds = Unit<struct PicosecondsTag>;
using Hertz = Unit<struct HertzTag>;
using Megahertz = Unit<struct MegahertzTag>;
using Volts = Unit<struct VoltsTag>;
using Ohms = Unit<struct OhmsTag>;
using Farads = Unit<struct FaradsTag>;

/// Absolute temperature on the Celsius scale — an affine point, not a
/// vector: points move by Kelvin deltas, and the difference of two
/// points is a Kelvin delta. Celsius + Celsius intentionally does not
/// exist (35 degC + 35 degC is not 70 degC of anything).
class Celsius {
 public:
  constexpr Celsius() noexcept = default;
  constexpr explicit Celsius(double degrees) noexcept : v_(degrees) {}

  [[nodiscard]] constexpr double value() const noexcept { return v_; }

  constexpr Celsius& operator+=(Kelvin d) noexcept { v_ += d.value(); return *this; }
  constexpr Celsius& operator-=(Kelvin d) noexcept { v_ -= d.value(); return *this; }

  friend constexpr Celsius operator+(Celsius t, Kelvin d) noexcept {
    return Celsius{t.v_ + d.value()};
  }
  friend constexpr Celsius operator+(Kelvin d, Celsius t) noexcept {
    return Celsius{d.value() + t.v_};
  }
  friend constexpr Celsius operator-(Celsius t, Kelvin d) noexcept {
    return Celsius{t.v_ - d.value()};
  }
  friend constexpr Kelvin operator-(Celsius a, Celsius b) noexcept {
    return Kelvin{a.v_ - b.v_};
  }

  friend constexpr bool operator==(Celsius a, Celsius b) noexcept { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Celsius a, Celsius b) noexcept { return a.v_ != b.v_; }
  friend constexpr bool operator<(Celsius a, Celsius b) noexcept { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Celsius a, Celsius b) noexcept { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Celsius a, Celsius b) noexcept { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Celsius a, Celsius b) noexcept { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

// --- Scale conversions (always explicit, never operators).

inline constexpr double kCelsiusOffset = 273.15;

[[nodiscard]] constexpr Kelvin to_kelvin(Celsius c) noexcept {
  return Kelvin{c.value() + kCelsiusOffset};
}
[[nodiscard]] constexpr Celsius to_celsius(Kelvin k) noexcept {
  return Celsius{k.value() - kCelsiusOffset};
}
[[nodiscard]] constexpr Seconds to_seconds(Picoseconds p) noexcept {
  return Seconds{p.value() * 1e-12};
}
[[nodiscard]] constexpr Picoseconds to_picoseconds(Seconds s) noexcept {
  return Picoseconds{s.value() * 1e12};
}
[[nodiscard]] constexpr Watts to_watts(Microwatts u) noexcept {
  return Watts{u.value() * 1e-6};
}
[[nodiscard]] constexpr Microwatts to_microwatts(Watts w) noexcept {
  return Microwatts{w.value() * 1e6};
}
[[nodiscard]] constexpr Hertz to_hertz(Megahertz m) noexcept {
  return Hertz{m.value() * 1e6};
}
[[nodiscard]] constexpr Megahertz to_megahertz(Hertz h) noexcept {
  return Megahertz{h.value() * 1e-6};
}

// --- Dimensionally valid cross-unit operations.

/// RC time constant.
[[nodiscard]] constexpr Seconds operator*(Ohms r, Farads c) noexcept {
  return Seconds{r.value() * c.value()};
}
[[nodiscard]] constexpr Seconds operator*(Farads c, Ohms r) noexcept {
  return Seconds{c.value() * r.value()};
}
/// Cycles elapsed (dimensionless).
[[nodiscard]] constexpr double operator*(Seconds s, Hertz f) noexcept {
  return s.value() * f.value();
}
[[nodiscard]] constexpr double operator*(Hertz f, Seconds s) noexcept {
  return f.value() * s.value();
}
/// Resistive dissipation V^2 / R.
[[nodiscard]] constexpr Watts dissipation(Volts v, Ohms r) noexcept {
  return Watts{v.value() * v.value() / r.value()};
}

/// Clock frequency of a critical-path period. The MHz/ps pairing uses
/// exactly the flow's historical expression (1e6 / cp_ps), so migrated
/// call sites are bit-identical to the raw-double arithmetic.
[[nodiscard]] constexpr Megahertz frequency_of(Picoseconds period) noexcept {
  return Megahertz{1e6 / period.value()};
}
[[nodiscard]] constexpr Picoseconds period_of(Megahertz f) noexcept {
  return Picoseconds{1e6 / f.value()};
}
[[nodiscard]] constexpr Hertz frequency_of(Seconds period) noexcept {
  return Hertz{1.0 / period.value()};
}
[[nodiscard]] constexpr Seconds period_of(Hertz f) noexcept {
  return Seconds{1.0 / f.value()};
}

// --- Literals (opt-in: `using namespace taf::util::units::literals`).

namespace literals {
constexpr Celsius operator""_degC(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Celsius operator""_degC(unsigned long long v) { return Celsius{static_cast<double>(v)}; }
constexpr Kelvin operator""_K(long double v) { return Kelvin{static_cast<double>(v)}; }
constexpr Kelvin operator""_K(unsigned long long v) { return Kelvin{static_cast<double>(v)}; }
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Microwatts operator""_uW(long double v) { return Microwatts{static_cast<double>(v)}; }
constexpr Microwatts operator""_uW(unsigned long long v) { return Microwatts{static_cast<double>(v)}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr Picoseconds operator""_ps(long double v) { return Picoseconds{static_cast<double>(v)}; }
constexpr Picoseconds operator""_ps(unsigned long long v) { return Picoseconds{static_cast<double>(v)}; }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_Hz(unsigned long long v) { return Hertz{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(long double v) { return Megahertz{static_cast<double>(v)}; }
constexpr Megahertz operator""_MHz(unsigned long long v) { return Megahertz{static_cast<double>(v)}; }
constexpr Volts operator""_V(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Volts operator""_V(unsigned long long v) { return Volts{static_cast<double>(v)}; }
constexpr Ohms operator""_Ohm(long double v) { return Ohms{static_cast<double>(v)}; }
constexpr Ohms operator""_Ohm(unsigned long long v) { return Ohms{static_cast<double>(v)}; }
constexpr Farads operator""_F(long double v) { return Farads{static_cast<double>(v)}; }
constexpr Farads operator""_F(unsigned long long v) { return Farads{static_cast<double>(v)}; }
constexpr Farads operator""_fF(long double v) { return Farads{static_cast<double>(v) * 1e-15}; }
constexpr Farads operator""_fF(unsigned long long v) { return Farads{static_cast<double>(v) * 1e-15}; }
}  // namespace literals

// --- Zero-overhead contract: one double, trivially copyable, no vtable.
static_assert(sizeof(Celsius) == sizeof(double));
static_assert(sizeof(Kelvin) == sizeof(double));
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Picoseconds) == sizeof(double));
static_assert(__is_trivially_copyable(Celsius));
static_assert(__is_trivially_copyable(Watts));
static_assert(__is_trivially_copyable(Megahertz));

}  // namespace taf::util::units

namespace taf {
/// Flow-wide shorthand: `units::Celsius` from any taf:: namespace.
namespace units = util::units;
}  // namespace taf

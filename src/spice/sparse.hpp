#pragma once
// Sparse MNA backend: CSR storage and a static-pattern LU factorization.
//
// The MNA Jacobian's sparsity pattern is fixed by the netlist, so the
// expensive work — a fill-reducing elimination order (greedy minimum
// degree, Markowitz-style on the symmetrized pattern) and the symbolic
// factorization (fill pattern of L and U) — is done ONCE per circuit.
// Every Newton iteration then only refactors numerically over the static
// pattern (up-looking row LU, Gilbert–Peierls style) and runs two
// triangular solves: O(nnz(L+U)) per iteration instead of the dense
// O(n^3).
//
// There is no numeric pivoting: MNA matrices carry gmin on every
// diagonal, and the elimination order is fixed by the symbolic phase.
// Pivots below kPivotFloor are regularized by +/-kPivotNudge — the same
// contract as the dense path (see linear.hpp).

#include <algorithm>
#include <cassert>
#include <vector>

#include "spice/linear.hpp"

namespace taf::spice {

/// Minimal CSR matrix (also used by tests to cross-check matrix-free
/// operators, e.g. the thermal grid's apply()).
struct CsrMatrix {
  int n = 0;
  std::vector<int> row_ptr;  ///< size n + 1
  std::vector<int> col;      ///< ascending within each row
  std::vector<double> val;

  /// Build from an entry list (duplicates are summed, diagonal entries
  /// are materialized even when absent so LU always has a pivot slot).
  static CsrMatrix from_entries(int n, const SparsityPattern& entries);

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Value slot index of (i, j), or -1 when outside the pattern.
  int slot(int i, int j) const;
};

/// Sparse LU over a fixed pattern. analyze() once, then factor() +
/// solve() any number of times with new values.
class SparseLu {
 public:
  /// Symbolic phase: ordering + fill pattern for the given CSR pattern.
  void analyze(const CsrMatrix& a);

  /// Numeric factorization of the values currently held by `a` (same
  /// pattern object handed to analyze()).
  void factor(const CsrMatrix& a);

  /// Solve A x = b in place using the last factor().
  void solve(std::vector<double>& b) const;

  int dimension() const { return n_; }
  /// Non-zeros of L + U (fill quality of the ordering; diagnostics).
  std::size_t lu_nnz() const { return l_col_.size() + u_col_.size(); }

 private:
  int n_ = 0;
  std::vector<int> perm_;      ///< perm_[k] = original index eliminated at step k
  std::vector<int> inv_perm_;  ///< inverse of perm_
  // Static fill patterns in permuted coordinates, rows concatenated.
  std::vector<int> l_ptr_, l_col_;  ///< strictly-lower part, cols ascending
  std::vector<int> u_ptr_, u_col_;  ///< upper incl. diagonal, cols ascending
  std::vector<double> l_val_, u_val_;
  mutable std::vector<double> y_;  ///< permuted rhs workspace
  std::vector<double> work_;       ///< dense scatter row for factor()
};

/// LinearSystem implementation backed by CsrMatrix + SparseLu, with an
/// O(1) stamp map from (i, j) to the CSR value slot.
class SparseSystem final : public LinearSystem {
 public:
  SparseSystem(int n, const SparsityPattern& pattern);

  // begin()/add() are inline: the class is final, so the solver's
  // assembly loop (templated on the concrete backend) devirtualizes and
  // inlines them — they are the hottest calls in a transient solve.
  void begin() override { std::fill(a_.val.begin(), a_.val.end(), 0.0); }
  void add(int i, int j, double v) override {
    const int s = slot_[static_cast<std::size_t>(i) * a_.n + j];
    assert(s >= 0 && "stamp outside the analyzed sparsity pattern");
    a_.val[static_cast<std::size_t>(s)] += v;
  }
  void factor_solve(std::vector<double>& rhs) override;
  LinearBackend backend() const override { return LinearBackend::Sparse; }

  const CsrMatrix& matrix() const { return a_; }
  const SparseLu& lu() const { return lu_; }

 private:
  CsrMatrix a_;
  SparseLu lu_;
  std::vector<int> slot_;  ///< n*n -> value index, -1 outside pattern
  bool factored_once_ = false;
};

/// Convenience for tests: solve A x = b with the sparse path (analyze +
/// factor + solve in one shot). Returns the solution.
std::vector<double> sparse_lu_solve(const CsrMatrix& a, std::vector<double> b);

}  // namespace taf::spice

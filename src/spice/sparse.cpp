#include "spice/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace taf::spice {

CsrMatrix CsrMatrix::from_entries(int n, const SparsityPattern& entries) {
  std::vector<std::vector<int>> rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows[static_cast<size_t>(i)].push_back(i);  // diagonal
  for (const auto& [i, j] : entries) {
    assert(i >= 0 && i < n && j >= 0 && j < n);
    rows[static_cast<size_t>(i)].push_back(j);
  }
  CsrMatrix m;
  m.n = n;
  m.row_ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    auto& r = rows[static_cast<size_t>(i)];
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    m.row_ptr[static_cast<size_t>(i) + 1] =
        m.row_ptr[static_cast<size_t>(i)] + static_cast<int>(r.size());
    m.col.insert(m.col.end(), r.begin(), r.end());
  }
  m.val.assign(m.col.size(), 0.0);
  return m;
}

void CsrMatrix::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  y.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int k = row_ptr[static_cast<size_t>(i)]; k < row_ptr[static_cast<size_t>(i) + 1]; ++k)
      acc += val[static_cast<size_t>(k)] * x[static_cast<size_t>(col[static_cast<size_t>(k)])];
    y[static_cast<size_t>(i)] = acc;
  }
}

int CsrMatrix::slot(int i, int j) const {
  const auto lo = col.begin() + row_ptr[static_cast<size_t>(i)];
  const auto hi = col.begin() + row_ptr[static_cast<size_t>(i) + 1];
  const auto it = std::lower_bound(lo, hi, j);
  if (it == hi || *it != j) return -1;
  return static_cast<int>(it - col.begin());
}

namespace {

/// Greedy minimum-degree ordering on the symmetrized pattern (Markowitz
/// criterion for a structurally symmetric matrix). Classic elimination
/// graph: remove the minimum-degree vertex, clique its neighbourhood.
std::vector<int> min_degree_order(const CsrMatrix& a) {
  const int n = a.n;
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int k = a.row_ptr[static_cast<size_t>(i)]; k < a.row_ptr[static_cast<size_t>(i) + 1]; ++k) {
      const int j = a.col[static_cast<size_t>(k)];
      if (j == i) continue;
      adj[static_cast<size_t>(i)].push_back(j);
      adj[static_cast<size_t>(j)].push_back(i);
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  std::vector<char> eliminated(static_cast<size_t>(n), 0);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = 0;
    for (int i = 0; i < n; ++i) {
      if (eliminated[static_cast<size_t>(i)]) continue;
      const std::size_t deg = adj[static_cast<size_t>(i)].size();
      if (best < 0 || deg < best_deg) {
        best = i;
        best_deg = deg;
      }
    }
    eliminated[static_cast<size_t>(best)] = 1;
    order.push_back(best);
    // Clique the live neighbourhood of `best`.
    std::vector<int> live;
    for (int nb : adj[static_cast<size_t>(best)])
      if (!eliminated[static_cast<size_t>(nb)]) live.push_back(nb);
    for (int nb : live) {
      auto& a_nb = adj[static_cast<size_t>(nb)];
      a_nb.insert(a_nb.end(), live.begin(), live.end());
      std::sort(a_nb.begin(), a_nb.end());
      a_nb.erase(std::unique(a_nb.begin(), a_nb.end()), a_nb.end());
      a_nb.erase(std::remove_if(a_nb.begin(), a_nb.end(),
                                [&](int x) {
                                  return x == nb || eliminated[static_cast<size_t>(x)];
                                }),
                 a_nb.end());
    }
    adj[static_cast<size_t>(best)].clear();
    adj[static_cast<size_t>(best)].shrink_to_fit();
  }
  return order;
}

}  // namespace

void SparseLu::analyze(const CsrMatrix& a) {
  n_ = a.n;
  perm_ = min_degree_order(a);
  inv_perm_.assign(static_cast<size_t>(n_), 0);
  for (int k = 0; k < n_; ++k) inv_perm_[static_cast<size_t>(perm_[static_cast<size_t>(k)])] = k;

  l_ptr_.assign(1, 0);
  u_ptr_.assign(1, 0);
  l_col_.clear();
  u_col_.clear();

  // Up-looking symbolic factorization: the pattern of row k of L+U is the
  // reach of row k of B = P A P^T through the U rows already computed.
  std::vector<char> in_row(static_cast<size_t>(n_), 0);
  std::vector<int> members;
  for (int k = 0; k < n_; ++k) {
    members.clear();
    std::priority_queue<int, std::vector<int>, std::greater<int>> todo;
    const int orig = perm_[static_cast<size_t>(k)];
    auto insert = [&](int c) {
      if (in_row[static_cast<size_t>(c)]) return;
      in_row[static_cast<size_t>(c)] = 1;
      members.push_back(c);
      if (c < k) todo.push(c);
    };
    for (int s = a.row_ptr[static_cast<size_t>(orig)]; s < a.row_ptr[static_cast<size_t>(orig) + 1]; ++s)
      insert(inv_perm_[static_cast<size_t>(a.col[static_cast<size_t>(s)])]);
    insert(k);  // pivot slot always exists
    while (!todo.empty()) {
      const int j = todo.top();
      todo.pop();
      // Fill: eliminating with U row j touches its columns beyond the diag.
      for (int s = u_ptr_[static_cast<size_t>(j)] + 1; s < u_ptr_[static_cast<size_t>(j) + 1]; ++s)
        insert(u_col_[static_cast<size_t>(s)]);
    }
    std::sort(members.begin(), members.end());
    for (int c : members) {
      in_row[static_cast<size_t>(c)] = 0;
      (c < k ? l_col_ : u_col_).push_back(c);
    }
    l_ptr_.push_back(static_cast<int>(l_col_.size()));
    u_ptr_.push_back(static_cast<int>(u_col_.size()));
  }
  l_val_.assign(l_col_.size(), 0.0);
  u_val_.assign(u_col_.size(), 0.0);
  work_.assign(static_cast<size_t>(n_), 0.0);
  y_.assign(static_cast<size_t>(n_), 0.0);
  ++thread_counters().symbolic_analyses;
}

void SparseLu::factor(const CsrMatrix& a) {
  assert(a.n == n_ && "factor() pattern must match analyze()");
  for (int k = 0; k < n_; ++k) {
    // Scatter B row k into the dense work row (pattern entries only).
    const int orig = perm_[static_cast<size_t>(k)];
    for (int s = a.row_ptr[static_cast<size_t>(orig)]; s < a.row_ptr[static_cast<size_t>(orig) + 1]; ++s)
      work_[static_cast<size_t>(inv_perm_[static_cast<size_t>(a.col[static_cast<size_t>(s)])])] =
          a.val[static_cast<size_t>(s)];

    // Eliminate through the earlier pivots this row reaches (ascending).
    for (int s = l_ptr_[static_cast<size_t>(k)]; s < l_ptr_[static_cast<size_t>(k) + 1]; ++s) {
      const int j = l_col_[static_cast<size_t>(s)];
      const double lkj = work_[static_cast<size_t>(j)] / u_val_[static_cast<size_t>(u_ptr_[static_cast<size_t>(j)])];
      l_val_[static_cast<size_t>(s)] = lkj;
      if (lkj != 0.0) {
        for (int t = u_ptr_[static_cast<size_t>(j)] + 1; t < u_ptr_[static_cast<size_t>(j) + 1]; ++t)
          work_[static_cast<size_t>(u_col_[static_cast<size_t>(t)])] -=
              lkj * u_val_[static_cast<size_t>(t)];
      }
      work_[static_cast<size_t>(j)] = 0.0;
    }

    // Gather U row k; regularize a vanishing pivot (same contract as the
    // dense path: nudge by +/-kPivotNudge instead of failing).
    const int u_begin = u_ptr_[static_cast<size_t>(k)];
    double pivot = work_[static_cast<size_t>(k)];
    if (std::fabs(pivot) < kPivotFloor) pivot += (pivot >= 0.0 ? kPivotNudge : -kPivotNudge);
    u_val_[static_cast<size_t>(u_begin)] = pivot;
    work_[static_cast<size_t>(k)] = 0.0;
    for (int s = u_begin + 1; s < u_ptr_[static_cast<size_t>(k) + 1]; ++s) {
      const int c = u_col_[static_cast<size_t>(s)];
      u_val_[static_cast<size_t>(s)] = work_[static_cast<size_t>(c)];
      work_[static_cast<size_t>(c)] = 0.0;
    }
  }
  ++thread_counters().factorizations;
}

void SparseLu::solve(std::vector<double>& b) const {
  assert(static_cast<int>(b.size()) == n_);
  for (int k = 0; k < n_; ++k) y_[static_cast<size_t>(k)] = b[static_cast<size_t>(perm_[static_cast<size_t>(k)])];
  // Forward: L y' = y (unit diagonal).
  for (int k = 0; k < n_; ++k) {
    double acc = y_[static_cast<size_t>(k)];
    for (int s = l_ptr_[static_cast<size_t>(k)]; s < l_ptr_[static_cast<size_t>(k) + 1]; ++s)
      acc -= l_val_[static_cast<size_t>(s)] * y_[static_cast<size_t>(l_col_[static_cast<size_t>(s)])];
    y_[static_cast<size_t>(k)] = acc;
  }
  // Backward: U x = y'.
  for (int k = n_ - 1; k >= 0; --k) {
    double acc = y_[static_cast<size_t>(k)];
    const int u_begin = u_ptr_[static_cast<size_t>(k)];
    for (int s = u_begin + 1; s < u_ptr_[static_cast<size_t>(k) + 1]; ++s)
      acc -= u_val_[static_cast<size_t>(s)] * y_[static_cast<size_t>(u_col_[static_cast<size_t>(s)])];
    y_[static_cast<size_t>(k)] = acc / u_val_[static_cast<size_t>(u_begin)];
  }
  for (int k = 0; k < n_; ++k) b[static_cast<size_t>(perm_[static_cast<size_t>(k)])] = y_[static_cast<size_t>(k)];
}

SparseSystem::SparseSystem(int n, const SparsityPattern& pattern)
    : a_(CsrMatrix::from_entries(n, pattern)),
      slot_(static_cast<size_t>(n) * static_cast<size_t>(n), -1) {
  for (int i = 0; i < n; ++i) {
    for (int k = a_.row_ptr[static_cast<size_t>(i)]; k < a_.row_ptr[static_cast<size_t>(i) + 1]; ++k)
      slot_[static_cast<size_t>(i) * n + a_.col[static_cast<size_t>(k)]] = k;
  }
  lu_.analyze(a_);
}

void SparseSystem::factor_solve(std::vector<double>& rhs) {
  lu_.factor(a_);
  if (factored_once_) ++thread_counters().pattern_reuses;
  factored_once_ = true;
  lu_.solve(rhs);
}

std::vector<double> sparse_lu_solve(const CsrMatrix& a, std::vector<double> b) {
  SparseLu lu;
  lu.analyze(a);
  lu.factor(a);
  lu.solve(b);
  return b;
}

}  // namespace taf::spice

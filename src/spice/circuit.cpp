#include "spice/circuit.hpp"

#include <cassert>

namespace taf::spice {

Waveform step_waveform(double v0, double v1, double t_step_ps, double ramp_ps) {
  assert(ramp_ps > 0.0);
  return [=](double t) {
    if (t <= t_step_ps) return v0;
    if (t >= t_step_ps + ramp_ps) return v1;
    return v0 + (v1 - v0) * (t - t_step_ps) / ramp_ps;
  };
}

Waveform dc_waveform(double v) {
  return [v](double) { return v; };
}

Circuit::Circuit() {
  names_.emplace_back("gnd");
  drives_.emplace_back(dc_waveform(0.0));  // ground is always driven to 0
}

NodeId Circuit::add_node(std::string name) {
  names_.push_back(std::move(name));
  drives_.emplace_back();  // free by default
  return static_cast<NodeId>(names_.size() - 1);
}

void Circuit::add_resistor(NodeId a, NodeId b, double kohm) {
  assert(kohm > 0.0);
  resistors_.push_back({a, b, kohm});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double ff) {
  assert(ff >= 0.0);
  capacitors_.push_back({a, b, ff});
}

void Circuit::add_mosfet(MosType type, tech::Flavor flavor, NodeId d, NodeId g, NodeId s,
                         double w_um) {
  assert(w_um > 0.0);
  mosfets_.push_back({type, flavor, d, g, s, w_um});
}

void Circuit::drive(NodeId n, Waveform w) {
  assert(n != kGround && "ground drive is fixed");
  drives_[static_cast<size_t>(n)] = std::move(w);
}

}  // namespace taf::spice

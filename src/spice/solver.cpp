#include "spice/solver.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "spice/mosfet_model.hpp"

namespace taf::spice {

namespace {

/// Dense linear solve A x = b with partial pivoting. A is n x n row-major.
/// Overwrites A and b. Near-zero pivots are regularized rather than
/// rejected: open-loop chains of high-gain stages biased at mid-rail have
/// determinants that underflow even though a damped Newton step in the
/// regularized direction still makes progress.
void lu_solve(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::fabs(a[static_cast<size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[static_cast<size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      double& diag = a[static_cast<size_t>(col) * n + col];
      diag += (diag >= 0.0 ? 1e-9 : -1e-9);
      pivot = col;
    }
    if (pivot != col) {
      for (int k = 0; k < n; ++k)
        std::swap(a[static_cast<size_t>(pivot) * n + k], a[static_cast<size_t>(col) * n + k]);
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(col)]);
    }
    const double diag = a[static_cast<size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = a[static_cast<size_t>(r) * n + col] / diag;
      if (f == 0.0) continue;
      a[static_cast<size_t>(r) * n + col] = 0.0;
      for (int k = col + 1; k < n; ++k)
        a[static_cast<size_t>(r) * n + k] -= f * a[static_cast<size_t>(col) * n + k];
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    for (int k = r + 1; k < n; ++k) sum -= a[static_cast<size_t>(r) * n + k] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(r)] = sum / a[static_cast<size_t>(r) * n + r];
  }
}

/// Maps circuit nodes to unknown indices (driven nodes and ground excluded).
struct NodeMap {
  std::vector<int> unknown_index;  ///< -1 for driven/ground nodes
  std::vector<NodeId> unknown_nodes;

  explicit NodeMap(const Circuit& c) {
    unknown_index.assign(static_cast<size_t>(c.num_nodes()), -1);
    for (NodeId n = 0; n < c.num_nodes(); ++n) {
      if (!c.is_driven(n)) {
        unknown_index[static_cast<size_t>(n)] = static_cast<int>(unknown_nodes.size());
        unknown_nodes.push_back(n);
      }
    }
  }
  int count() const { return static_cast<int>(unknown_nodes.size()); }
};

/// One Newton solve of the (possibly companion-augmented) nonlinear system.
/// `v` holds all node voltages and is updated in place for unknown nodes;
/// driven node entries must be pre-set by the caller.
///
/// cap_g / cap_i: per-capacitor companion conductance [mA/V] and per-node
/// equivalent current injection. Empty cap_g means a pure DC solve
/// (capacitors open).
void newton_solve(const Circuit& c, const tech::Technology& tech, const SolverOptions& opt,
                  const NodeMap& map, std::vector<double>& v, bool with_caps,
                  double cap_g_scale, const std::vector<double>& v_prev) {
  const int n = map.count();
  if (n == 0) return;
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> rhs(static_cast<size_t>(n));

  for (int iter = 0; iter < opt.max_newton_iters; ++iter) {
    std::fill(a.begin(), a.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    auto idx = [&](NodeId node) { return map.unknown_index[static_cast<size_t>(node)]; };
    // Stamp conductance g between nodes x and y with current source
    // contributions handled by the residual formulation below. We build
    // J * dv = -f directly: accumulate f (KCL residual, current leaving
    // node) in rhs with a negative sign, and df/dv in `a`.
    auto stamp_g = [&](NodeId x, NodeId y, double g) {
      const int ix = idx(x), iy = idx(y);
      const double ivx = v[static_cast<size_t>(x)], ivy = v[static_cast<size_t>(y)];
      const double i_leaving_x = g * (ivx - ivy);
      if (ix >= 0) {
        rhs[static_cast<size_t>(ix)] -= i_leaving_x;
        a[static_cast<size_t>(ix) * n + ix] += g;
        if (iy >= 0) a[static_cast<size_t>(ix) * n + iy] -= g;
      }
      if (iy >= 0) {
        rhs[static_cast<size_t>(iy)] += i_leaving_x;
        a[static_cast<size_t>(iy) * n + iy] += g;
        if (ix >= 0) a[static_cast<size_t>(iy) * n + ix] -= g;
      }
    };
    auto stamp_current_into = [&](NodeId x, double i_in) {
      const int ix = idx(x);
      if (ix >= 0) rhs[static_cast<size_t>(ix)] += i_in;
    };

    // gmin to ground on every unknown node for convergence.
    for (NodeId node : map.unknown_nodes) stamp_g(node, kGround, opt.gmin);

    for (const Resistor& r : c.resistors()) stamp_g(r.a, r.b, 1.0 / r.kohm);

    if (with_caps) {
      // Backward Euler companion: i = C/dt * (v - v_prev); conductance
      // C/dt between the nodes plus history current source.
      for (const Capacitor& cap : c.capacitors()) {
        const double g = cap.ff * cap_g_scale;
        stamp_g(cap.a, cap.b, g);
        const double hist = g * (v_prev[static_cast<size_t>(cap.a)] - v_prev[static_cast<size_t>(cap.b)]);
        stamp_current_into(cap.a, hist);
        stamp_current_into(cap.b, -hist);
      }
      // MOSFET intrinsic caps: gate and drain/source junction caps to ground.
      for (const Mosfet& m : c.mosfets()) {
        const double cg = mosfet_cgate_ff(m, tech) * cap_g_scale;
        const double cd = mosfet_cdrain_ff(m, tech) * cap_g_scale;
        auto self_cap = [&](NodeId node, double g) {
          stamp_g(node, kGround, g);
          stamp_current_into(node, g * v_prev[static_cast<size_t>(node)]);
        };
        self_cap(m.gate, cg);
        self_cap(m.drain, cd);
        self_cap(m.source, cd);
      }
    }

    // MOSFETs: nonlinear current source drain->source plus numeric Jacobian.
    for (const Mosfet& m : c.mosfets()) {
      const double vd = v[static_cast<size_t>(m.drain)];
      const double vg = v[static_cast<size_t>(m.gate)];
      const double vs = v[static_cast<size_t>(m.source)];
      const double id = mosfet_current_ma(m, tech, opt.temp_c, vd, vg, vs);
      const double h = 1e-5;
      const double did_dvd =
          (mosfet_current_ma(m, tech, opt.temp_c, vd + h, vg, vs) - id) / h;
      const double did_dvg =
          (mosfet_current_ma(m, tech, opt.temp_c, vd, vg + h, vs) - id) / h;
      const double did_dvs =
          (mosfet_current_ma(m, tech, opt.temp_c, vd, vg, vs + h) - id) / h;

      const int idr = idx(m.drain), isr = idx(m.source), igt = idx(m.gate);
      // Current `id` leaves the drain node and enters the source node.
      if (idr >= 0) {
        rhs[static_cast<size_t>(idr)] -= id;
        a[static_cast<size_t>(idr) * n + idr] += did_dvd;
        if (igt >= 0) a[static_cast<size_t>(idr) * n + igt] += did_dvg;
        if (isr >= 0) a[static_cast<size_t>(idr) * n + isr] += did_dvs;
      }
      if (isr >= 0) {
        rhs[static_cast<size_t>(isr)] += id;
        a[static_cast<size_t>(isr) * n + isr] -= did_dvs;
        if (igt >= 0) a[static_cast<size_t>(isr) * n + igt] -= did_dvg;
        if (idr >= 0) a[static_cast<size_t>(isr) * n + idr] -= did_dvd;
      }
    }

    std::vector<double> a_copy = a;
    std::vector<double> dv = rhs;
    lu_solve(a_copy, dv, n);

    double max_dv = 0.0;
    for (int i = 0; i < n; ++i) {
      double step = dv[static_cast<size_t>(i)];
      step = std::clamp(step, -0.3, 0.3);  // damped Newton
      v[static_cast<size_t>(map.unknown_nodes[static_cast<size_t>(i)])] += step;
      max_dv = std::max(max_dv, std::fabs(step));
    }
    if (max_dv < opt.v_tol) return;
  }
  throw std::runtime_error("spice: Newton iteration did not converge");
}

/// Nonlinear Gauss-Seidel relaxation: solve each node's KCL alone by
/// bisection with the other nodes frozen. Logic levels propagate down
/// gate chains in one pass per stage, giving Newton an initial point near
/// the operating point instead of the degenerate all-mid-rail bias.
void gauss_seidel_init(const Circuit& c, const tech::Technology& tech,
                       const SolverOptions& opt, const NodeMap& map,
                       std::vector<double>& v) {
  const double v_lo = -0.2;
  const double v_hi = tech.vdd + 0.4;

  auto kcl = [&](NodeId node, double vn) {
    const double saved = v[static_cast<size_t>(node)];
    v[static_cast<size_t>(node)] = vn;
    double i_leaving = opt.gmin * vn;
    for (const Resistor& r : c.resistors()) {
      if (r.a == node) i_leaving += (vn - v[static_cast<size_t>(r.b)]) / r.kohm;
      if (r.b == node) i_leaving += (vn - v[static_cast<size_t>(r.a)]) / r.kohm;
    }
    for (const Mosfet& m : c.mosfets()) {
      if (m.drain != node && m.source != node) continue;
      const double id = mosfet_current_ma(m, tech, opt.temp_c, v[static_cast<size_t>(m.drain)],
                                          v[static_cast<size_t>(m.gate)],
                                          v[static_cast<size_t>(m.source)]);
      if (m.drain == node) i_leaving += id;
      if (m.source == node) i_leaving -= id;
    }
    v[static_cast<size_t>(node)] = saved;
    return i_leaving;
  };

  const int passes = std::min(map.count() + 2, 60);
  for (int pass = 0; pass < passes; ++pass) {
    double max_change = 0.0;
    for (NodeId node : map.unknown_nodes) {
      // KCL is monotonically increasing in the node voltage (gmin plus
      // device output conductances), so bisection is safe.
      double lo = v_lo, hi = v_hi;
      if (kcl(node, lo) > 0.0 || kcl(node, hi) < 0.0) continue;  // no bracket
      for (int it = 0; it < 40; ++it) {
        const double mid = 0.5 * (lo + hi);
        (kcl(node, mid) > 0.0 ? hi : lo) = mid;
      }
      const double vn = 0.5 * (lo + hi);
      max_change = std::max(max_change, std::fabs(vn - v[static_cast<size_t>(node)]));
      v[static_cast<size_t>(node)] = vn;
    }
    if (max_change < 1e-4) break;
  }
}

}  // namespace

std::vector<double> solve_dc(const Circuit& c, const tech::Technology& tech,
                             const SolverOptions& opt) {
  NodeMap map(c);
  std::vector<double> v(static_cast<size_t>(c.num_nodes()), 0.0);
  for (NodeId node = 0; node < c.num_nodes(); ++node) {
    if (c.is_driven(node)) v[static_cast<size_t>(node)] = c.drives()[static_cast<size_t>(node)](0.0);
  }
  // Start unknown nodes at half supply, relax toward logic levels, then
  // polish with full Newton.
  for (NodeId node : map.unknown_nodes) v[static_cast<size_t>(node)] = 0.5 * tech.vdd;
  gauss_seidel_init(c, tech, opt, map, v);
  std::vector<double> dummy;
  newton_solve(c, tech, opt, map, v, /*with_caps=*/false, 0.0, dummy);
  return v;
}

TransientResult solve_transient(const Circuit& c, const tech::Technology& tech,
                                const SolverOptions& opt, double t_stop_ps) {
  assert(opt.dt_ps > 0.0);
  NodeMap map(c);
  std::vector<double> v = solve_dc(c, tech, opt);

  TransientResult result;
  const auto n_nodes = static_cast<size_t>(c.num_nodes());
  result.waveforms.assign(n_nodes, {});

  const double cap_g_scale = 1.0 / opt.dt_ps;  // fF/ps = mA/V
  double t = 0.0;
  while (t <= t_stop_ps + 1e-9) {
    result.time_ps.push_back(t);
    for (size_t i = 0; i < n_nodes; ++i) result.waveforms[i].push_back(v[i]);

    const double t_next = t + opt.dt_ps;
    std::vector<double> v_prev = v;
    for (NodeId node = 0; node < c.num_nodes(); ++node) {
      if (c.is_driven(node))
        v[static_cast<size_t>(node)] = c.drives()[static_cast<size_t>(node)](t_next);
    }
    newton_solve(c, tech, opt, map, v, /*with_caps=*/true, cap_g_scale, v_prev);
    t = t_next;
  }
  return result;
}

double crossing_time_ps(const TransientResult& r, NodeId node, double threshold,
                        bool rising, double t_from_ps) {
  const auto& w = r.waveforms[static_cast<size_t>(node)];
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (r.time_ps[i] < t_from_ps) continue;
    const double v0 = w[i - 1];
    const double v1 = w[i];
    const bool crossed = rising ? (v0 < threshold && v1 >= threshold)
                                : (v0 > threshold && v1 <= threshold);
    if (crossed) {
      const double frac = (threshold - v0) / (v1 - v0);
      return r.time_ps[i - 1] + frac * (r.time_ps[i] - r.time_ps[i - 1]);
    }
  }
  return -1.0;
}

double propagation_delay_ps(const TransientResult& r, NodeId in, NodeId out, double vdd,
                            bool in_rising, bool out_rising, double t_from_ps) {
  const double t_in = crossing_time_ps(r, in, 0.5 * vdd, in_rising, t_from_ps);
  if (t_in < 0.0) return -1.0;
  const double t_out = crossing_time_ps(r, out, 0.5 * vdd, out_rising, t_in);
  if (t_out < 0.0) return -1.0;
  return t_out - t_in;
}

}  // namespace taf::spice

#include "spice/solver.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "spice/linear.hpp"
#include "spice/mosfet_model.hpp"
#include "spice/sparse.hpp"

namespace taf::spice {

namespace {

/// Maps circuit nodes to unknown indices (driven nodes and ground excluded).
struct NodeMap {
  std::vector<int> unknown_index;  ///< -1 for driven/ground nodes
  std::vector<NodeId> unknown_nodes;

  explicit NodeMap(const Circuit& c) {
    unknown_index.assign(static_cast<size_t>(c.num_nodes()), -1);
    for (NodeId n = 0; n < c.num_nodes(); ++n) {
      if (!c.is_driven(n)) {
        unknown_index[static_cast<size_t>(n)] = static_cast<int>(unknown_nodes.size());
        unknown_nodes.push_back(n);
      }
    }
  }
  int count() const { return static_cast<int>(unknown_nodes.size()); }
  int idx(NodeId node) const { return unknown_index[static_cast<size_t>(node)]; }
};

/// Jacobian sparsity of the MNA system: fixed by the netlist, independent
/// of voltages, so it is collected once per solve and handed to the
/// linear backend (the sparse backend computes its symbolic factorization
/// from it exactly once). The capacitor entries are always included: the
/// DC pattern is a subset and extra structural zeros are harmless.
SparsityPattern mna_pattern(const Circuit& c, const NodeMap& map) {
  SparsityPattern p;
  auto couple = [&](NodeId a, NodeId b) {
    const int ia = map.idx(a), ib = map.idx(b);
    if (ia >= 0) p.emplace_back(ia, ia);
    if (ib >= 0) p.emplace_back(ib, ib);
    if (ia >= 0 && ib >= 0) {
      p.emplace_back(ia, ib);
      p.emplace_back(ib, ia);
    }
  };
  for (int i = 0; i < map.count(); ++i) p.emplace_back(i, i);  // gmin
  for (const Resistor& r : c.resistors()) couple(r.a, r.b);
  for (const Capacitor& cap : c.capacitors()) couple(cap.a, cap.b);
  for (const Mosfet& m : c.mosfets()) {
    const int idr = map.idx(m.drain), igt = map.idx(m.gate), isr = map.idx(m.source);
    for (const int row : {idr, isr}) {
      if (row < 0) continue;
      p.emplace_back(row, row);
      for (const int col : {idr, igt, isr})
        if (col >= 0) p.emplace_back(row, col);
    }
    if (igt >= 0) p.emplace_back(igt, igt);  // intrinsic gate cap to ground
  }
  return p;
}

/// Everything reusable across the Newton iterations and timesteps of one
/// solve: the node map, the per-device temperature-dependent model terms,
/// the companion capacitances, and the factorization backend with its
/// symbolic analysis.
struct SolveContext {
  NodeMap map;
  std::vector<MosfetTherm> therms;  ///< per mosfet, at opt.temp_c
  std::vector<double> cg_ff;        ///< per mosfet intrinsic gate cap
  std::vector<double> cd_ff;        ///< per mosfet junction cap
  std::unique_ptr<LinearSystem> sys;
  std::vector<double> rhs;

  SolveContext(const Circuit& c, const tech::Technology& tech, const SolverOptions& opt)
      : map(c) {
    therms.reserve(c.mosfets().size());
    cg_ff.reserve(c.mosfets().size());
    cd_ff.reserve(c.mosfets().size());
    for (const Mosfet& m : c.mosfets()) {
      therms.push_back(mosfet_therm(m, tech, opt.temp_c.value()));
      cg_ff.push_back(mosfet_cgate_ff(m, tech));
      cd_ff.push_back(mosfet_cdrain_ff(m, tech));
    }
    sys = make_linear_system(opt.backend, map.count(), mna_pattern(c, map));
    rhs.assign(static_cast<size_t>(map.count()), 0.0);
  }
};

/// One Newton solve of the (possibly companion-augmented) nonlinear system.
/// `v` holds all node voltages and is updated in place for unknown nodes;
/// driven node entries must be pre-set by the caller.
///
/// cap_g_scale: backward-Euler companion conductance scale 1/dt [1/ps];
/// with_caps=false means a pure DC solve (capacitors open).
/// Templated on the concrete system type: SparseSystem is final with
/// inline begin()/add(), so the default backend's assembly — the hottest
/// loop in a transient solve — compiles down to direct array updates
/// instead of ~200 virtual calls per Newton iteration.
template <class Sys>
void newton_loop(SolveContext& ctx, Sys& sys, const Circuit& c, const SolverOptions& opt,
                 std::vector<double>& v, bool with_caps, double cap_g_scale,
                 const std::vector<double>& v_prev) {
  const int n = ctx.map.count();
  std::vector<double>& rhs = ctx.rhs;

  for (int iter = 0; iter < opt.max_newton_iters; ++iter) {
    sys.begin();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    auto idx = [&](NodeId node) { return ctx.map.idx(node); };
    // Stamp conductance g between nodes x and y with current source
    // contributions handled by the residual formulation below. We build
    // J * dv = -f directly: accumulate f (KCL residual, current leaving
    // node) in rhs with a negative sign, and df/dv in the system matrix.
    auto stamp_g = [&](NodeId x, NodeId y, double g) {
      const int ix = idx(x), iy = idx(y);
      const double ivx = v[static_cast<size_t>(x)], ivy = v[static_cast<size_t>(y)];
      const double i_leaving_x = g * (ivx - ivy);
      if (ix >= 0) {
        rhs[static_cast<size_t>(ix)] -= i_leaving_x;
        sys.add(ix, ix, g);
        if (iy >= 0) sys.add(ix, iy, -g);
      }
      if (iy >= 0) {
        rhs[static_cast<size_t>(iy)] += i_leaving_x;
        sys.add(iy, iy, g);
        if (ix >= 0) sys.add(iy, ix, -g);
      }
    };
    auto stamp_current_into = [&](NodeId x, double i_in) {
      const int ix = idx(x);
      if (ix >= 0) rhs[static_cast<size_t>(ix)] += i_in;
    };

    // gmin to ground on every unknown node for convergence.
    for (NodeId node : ctx.map.unknown_nodes) stamp_g(node, kGround, opt.gmin);

    for (const Resistor& r : c.resistors()) stamp_g(r.a, r.b, 1.0 / r.kohm);

    if (with_caps) {
      // Backward Euler companion: i = C/dt * (v - v_prev); conductance
      // C/dt between the nodes plus history current source.
      for (const Capacitor& cap : c.capacitors()) {
        const double g = cap.ff * cap_g_scale;
        stamp_g(cap.a, cap.b, g);
        const double hist = g * (v_prev[static_cast<size_t>(cap.a)] - v_prev[static_cast<size_t>(cap.b)]);
        stamp_current_into(cap.a, hist);
        stamp_current_into(cap.b, -hist);
      }
      // MOSFET intrinsic caps: gate and drain/source junction caps to ground.
      for (std::size_t mi = 0; mi < c.mosfets().size(); ++mi) {
        const Mosfet& m = c.mosfets()[mi];
        const double cg = ctx.cg_ff[mi] * cap_g_scale;
        const double cd = ctx.cd_ff[mi] * cap_g_scale;
        auto self_cap = [&](NodeId node, double g) {
          stamp_g(node, kGround, g);
          stamp_current_into(node, g * v_prev[static_cast<size_t>(node)]);
        };
        self_cap(m.gate, cg);
        self_cap(m.drain, cd);
        self_cap(m.source, cd);
      }
    }

    // MOSFETs: nonlinear current source drain->source plus analytic
    // Jacobian from a single model evaluation.
    for (std::size_t mi = 0; mi < c.mosfets().size(); ++mi) {
      const Mosfet& m = c.mosfets()[mi];
      const MosfetOp op = mosfet_eval(ctx.therms[mi], v[static_cast<size_t>(m.drain)],
                                      v[static_cast<size_t>(m.gate)],
                                      v[static_cast<size_t>(m.source)]);
      const int idr = idx(m.drain), isr = idx(m.source), igt = idx(m.gate);
      // Current `id` leaves the drain node and enters the source node.
      if (idr >= 0) {
        rhs[static_cast<size_t>(idr)] -= op.id_ma;
        sys.add(idr, idr, op.did_dvd);
        if (igt >= 0) sys.add(idr, igt, op.did_dvg);
        if (isr >= 0) sys.add(idr, isr, op.did_dvs);
      }
      if (isr >= 0) {
        rhs[static_cast<size_t>(isr)] += op.id_ma;
        sys.add(isr, isr, -op.did_dvs);
        if (igt >= 0) sys.add(isr, igt, -op.did_dvg);
        if (idr >= 0) sys.add(isr, idr, -op.did_dvd);
      }
    }

    sys.factor_solve(rhs);
    ++thread_counters().newton_iterations;

    double max_dv = 0.0;
    for (int i = 0; i < n; ++i) {
      double step = rhs[static_cast<size_t>(i)];
      step = std::clamp(step, -0.3, 0.3);  // damped Newton
      v[static_cast<size_t>(ctx.map.unknown_nodes[static_cast<size_t>(i)])] += step;
      max_dv = std::max(max_dv, std::fabs(step));
    }
    if (max_dv < opt.v_tol) return;
  }
  throw std::runtime_error("spice: Newton iteration did not converge");
}

/// One Newton solve; dispatches to the statically-typed loop for the
/// sparse backend and to the virtual interface otherwise.
void newton_solve(SolveContext& ctx, const Circuit& c, const SolverOptions& opt,
                  std::vector<double>& v, bool with_caps, double cap_g_scale,
                  const std::vector<double>& v_prev) {
  if (ctx.map.count() == 0) return;
  if (auto* sp = dynamic_cast<SparseSystem*>(ctx.sys.get())) {
    newton_loop(ctx, *sp, c, opt, v, with_caps, cap_g_scale, v_prev);
  } else {
    newton_loop(ctx, *ctx.sys, c, opt, v, with_caps, cap_g_scale, v_prev);
  }
}

/// Nonlinear Gauss-Seidel relaxation: solve each node's KCL alone by
/// bisection with the other nodes frozen. Logic levels propagate down
/// gate chains in one pass per stage, giving Newton an initial point near
/// the operating point instead of the degenerate all-mid-rail bias.
void gauss_seidel_init(const Circuit& c, const SolveContext& ctx,
                       const SolverOptions& opt, double vdd, std::vector<double>& v) {
  const double v_lo = -0.2;
  const double v_hi = vdd + 0.4;

  auto kcl = [&](NodeId node, double vn) {
    const double saved = v[static_cast<size_t>(node)];
    v[static_cast<size_t>(node)] = vn;
    double i_leaving = opt.gmin * vn;
    for (const Resistor& r : c.resistors()) {
      if (r.a == node) i_leaving += (vn - v[static_cast<size_t>(r.b)]) / r.kohm;
      if (r.b == node) i_leaving += (vn - v[static_cast<size_t>(r.a)]) / r.kohm;
    }
    for (std::size_t mi = 0; mi < c.mosfets().size(); ++mi) {
      const Mosfet& m = c.mosfets()[mi];
      if (m.drain != node && m.source != node) continue;
      const double id = mosfet_eval(ctx.therms[mi], v[static_cast<size_t>(m.drain)],
                                    v[static_cast<size_t>(m.gate)],
                                    v[static_cast<size_t>(m.source)])
                            .id_ma;
      if (m.drain == node) i_leaving += id;
      if (m.source == node) i_leaving -= id;
    }
    v[static_cast<size_t>(node)] = saved;
    return i_leaving;
  };

  const int passes = std::min(ctx.map.count() + 2, 60);
  for (int pass = 0; pass < passes; ++pass) {
    double max_change = 0.0;
    for (NodeId node : ctx.map.unknown_nodes) {
      // KCL is monotonically increasing in the node voltage (gmin plus
      // device output conductances), so bisection is safe.
      double lo = v_lo, hi = v_hi;
      if (kcl(node, lo) > 0.0 || kcl(node, hi) < 0.0) continue;  // no bracket
      for (int it = 0; it < 40; ++it) {
        const double mid = 0.5 * (lo + hi);
        (kcl(node, mid) > 0.0 ? hi : lo) = mid;
      }
      const double vn = 0.5 * (lo + hi);
      max_change = std::max(max_change, std::fabs(vn - v[static_cast<size_t>(node)]));
      v[static_cast<size_t>(node)] = vn;
    }
    if (max_change < 1e-4) break;
  }
}

/// DC operating point into an existing context (shared with the transient
/// entry so the symbolic factorization is computed once per circuit).
std::vector<double> solve_dc_with(SolveContext& ctx, const Circuit& c,
                                  const tech::Technology& tech,
                                  const SolverOptions& opt) {
  std::vector<double> v(static_cast<size_t>(c.num_nodes()), 0.0);
  for (NodeId node = 0; node < c.num_nodes(); ++node) {
    if (c.is_driven(node)) v[static_cast<size_t>(node)] = c.drives()[static_cast<size_t>(node)](0.0);
  }
  // Start unknown nodes at half supply, relax toward logic levels, then
  // polish with full Newton.
  for (NodeId node : ctx.map.unknown_nodes) v[static_cast<size_t>(node)] = 0.5 * tech.vdd;
  gauss_seidel_init(c, ctx, opt, tech.vdd, v);
  std::vector<double> dummy;
  newton_solve(ctx, c, opt, v, /*with_caps=*/false, 0.0, dummy);
  return v;
}

}  // namespace

std::vector<double> solve_dc(const Circuit& c, const tech::Technology& tech,
                             const SolverOptions& opt) {
  SolveContext ctx(c, tech, opt);
  return solve_dc_with(ctx, c, tech, opt);
}

TransientResult solve_transient(const Circuit& c, const tech::Technology& tech,
                                const SolverOptions& opt, double t_stop_ps) {
  assert(opt.dt_ps > 0.0);
  SolveContext ctx(c, tech, opt);
  std::vector<double> v = solve_dc_with(ctx, c, tech, opt);

  TransientResult result;
  const auto n_nodes = static_cast<size_t>(c.num_nodes());
  result.waveforms.assign(n_nodes, {});

  const double cap_g_scale = 1.0 / opt.dt_ps;  // fF/ps = mA/V
  std::vector<double> v_prev(n_nodes);
  double t = 0.0;
  while (t <= t_stop_ps + 1e-9) {
    result.time_ps.push_back(t);
    for (size_t i = 0; i < n_nodes; ++i) result.waveforms[i].push_back(v[i]);

    const double t_next = t + opt.dt_ps;
    v_prev = v;
    for (NodeId node = 0; node < c.num_nodes(); ++node) {
      if (c.is_driven(node))
        v[static_cast<size_t>(node)] = c.drives()[static_cast<size_t>(node)](t_next);
    }
    newton_solve(ctx, c, opt, v, /*with_caps=*/true, cap_g_scale, v_prev);
    t = t_next;
  }
  return result;
}

double crossing_time_ps(const TransientResult& r, NodeId node, double threshold,
                        bool rising, double t_from_ps) {
  const auto& w = r.waveforms[static_cast<size_t>(node)];
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (r.time_ps[i] < t_from_ps) continue;
    const double v0 = w[i - 1];
    const double v1 = w[i];
    const bool crossed = rising ? (v0 < threshold && v1 >= threshold)
                                : (v0 > threshold && v1 <= threshold);
    if (crossed) {
      const double frac = (threshold - v0) / (v1 - v0);
      return r.time_ps[i - 1] + frac * (r.time_ps[i] - r.time_ps[i - 1]);
    }
  }
  return -1.0;
}

double propagation_delay_ps(const TransientResult& r, NodeId in, NodeId out, double vdd,
                            bool in_rising, bool out_rising, double t_from_ps) {
  const double t_in = crossing_time_ps(r, in, 0.5 * vdd, in_rising, t_from_ps);
  if (t_in < 0.0) return -1.0;
  const double t_out = crossing_time_ps(r, out, 0.5 * vdd, out_rising, t_in);
  if (t_out < 0.0) return -1.0;
  return t_out - t_in;
}

}  // namespace taf::spice

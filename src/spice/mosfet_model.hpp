#pragma once
// Alpha-power-law MOSFET I-V model (Sakurai–Newton) with subthreshold
// conduction, evaluated at a given junction temperature.

#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace taf::spice {

/// Drain current of the device for terminal voltages (node voltages w.r.t.
/// ground), positive current flowing drain -> source for NMOS. [mA]
double mosfet_current_ma(const Mosfet& m, const tech::Technology& t, double temp_c,
                         double vd, double vg, double vs);

/// Total gate capacitance of the device [fF].
double mosfet_cgate_ff(const Mosfet& m, const tech::Technology& t);

/// Total drain/source junction capacitance [fF].
double mosfet_cdrain_ff(const Mosfet& m, const tech::Technology& t);

}  // namespace taf::spice

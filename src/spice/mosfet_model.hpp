#pragma once
// Alpha-power-law MOSFET I-V model (Sakurai–Newton) with subthreshold
// conduction, evaluated at a given junction temperature.

#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace taf::spice {

/// Drain current of the device for terminal voltages (node voltages w.r.t.
/// ground), positive current flowing drain -> source for NMOS. [mA]
double mosfet_current_ma(const Mosfet& m, const tech::Technology& t, double temp_c,
                         double vd, double vg, double vs);

/// Temperature-dependent device terms, hoisted out of the Newton loop:
/// the junction temperature is fixed for a whole solve, so Vth, the
/// mobility factor and the soft-plus knee are computed once per device
/// per solve instead of once per model evaluation.
struct MosfetTherm {
  double vth = 0.0;       ///< |Vth| at the solve temperature [V]
  double k_w_mu = 0.0;    ///< k_drive * W * mobility(T) [mA at unit overdrive]
  double knee = 0.045;    ///< soft-plus width [V]
  double alpha = 1.3;     ///< velocity-saturation exponent
  bool pmos = false;
};

MosfetTherm mosfet_therm(const Mosfet& m, const tech::Technology& t, double temp_c);

/// Drain current and its derivatives w.r.t. the three terminal voltages,
/// from one model evaluation (shared subexpressions; no numeric
/// differencing). Sign conventions match mosfet_current_ma.
struct MosfetOp {
  double id_ma = 0.0;
  double did_dvd = 0.0;
  double did_dvg = 0.0;
  double did_dvs = 0.0;
};

MosfetOp mosfet_eval(const MosfetTherm& th, double vd, double vg, double vs);

/// Total gate capacitance of the device [fF].
double mosfet_cgate_ff(const Mosfet& m, const tech::Technology& t);

/// Total drain/source junction capacitance [fF].
double mosfet_cdrain_ff(const Mosfet& m, const tech::Technology& t);

}  // namespace taf::spice

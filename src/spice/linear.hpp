#pragma once
// Linear-solver seam of the MNA Newton loop.
//
// The Jacobian of a circuit has a sparsity pattern fixed by the netlist,
// so the per-iteration linear solve can be served by either of two
// interchangeable backends behind the LinearSystem interface:
//   * Dense  — row-major LU with partial pivoting (the historical path,
//     kept as the differential-testing oracle);
//   * Sparse — CSR LU with a fill-reducing ordering whose symbolic
//     factorization is computed once per circuit and reused across all
//     Newton iterations and timesteps (src/spice/sparse.hpp).
//
// Both backends share one regularization contract: a pivot whose
// magnitude falls below kPivotFloor is nudged by +/-kPivotNudge instead
// of failing, so open-loop chains of high-gain stages biased at mid-rail
// (determinant underflow) still yield a damped Newton direction.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace taf::spice {

enum class LinearBackend { Dense, Sparse };

/// Backend used when SolverOptions does not name one: Sparse, unless the
/// TAF_SPICE_BACKEND environment variable ("dense" | "sparse") overrides
/// it. Read once per process.
LinearBackend default_backend();

const char* backend_name(LinearBackend b);

/// Pivot regularization contract shared by both backends.
inline constexpr double kPivotFloor = 1e-12;
inline constexpr double kPivotNudge = 1e-9;

/// Dense linear solve A x = b with partial pivoting. A is n x n row-major.
/// Overwrites A and b (solution in b). Near-zero pivots are regularized
/// per the contract above rather than rejected.
void dense_lu_solve(std::vector<double>& a, std::vector<double>& b, int n);

/// Per-thread cumulative solver counters. The solver bumps these on every
/// factorization/Newton iteration; runner tasks snapshot deltas into
/// TaskMetrics so bench_all can report where the SPICE time went.
struct SolverCounters {
  std::uint64_t factorizations = 0;     ///< numeric (re)factorizations
  std::uint64_t symbolic_analyses = 0;  ///< sparse symbolic factorizations
  std::uint64_t pattern_reuses = 0;     ///< numeric refactors on a cached pattern
  std::uint64_t newton_iterations = 0;  ///< Newton steps across all solves

  SolverCounters operator-(const SolverCounters& o) const {
    return {factorizations - o.factorizations, symbolic_analyses - o.symbolic_analyses,
            pattern_reuses - o.pattern_reuses, newton_iterations - o.newton_iterations};
  }
};

SolverCounters& thread_counters();

/// One linear system A x = b of fixed dimension and (for the sparse
/// backend) fixed sparsity pattern. Assembly stamps entries with add();
/// factor_solve() factorizes the current values and overwrites rhs with
/// the solution. begin() resets the values for the next assembly.
class LinearSystem {
 public:
  virtual ~LinearSystem() = default;
  virtual void begin() = 0;
  /// A(i, j) += v. (i, j) must belong to the pattern the system was
  /// created with.
  virtual void add(int i, int j, double v) = 0;
  virtual void factor_solve(std::vector<double>& rhs) = 0;
  virtual LinearBackend backend() const = 0;
};

/// Entry list of a sparsity pattern (duplicates allowed; diagonal need
/// not be explicit — backends insert it).
using SparsityPattern = std::vector<std::pair<int, int>>;

std::unique_ptr<LinearSystem> make_linear_system(LinearBackend backend, int n,
                                                 const SparsityPattern& pattern);

}  // namespace taf::spice

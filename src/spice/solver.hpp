#pragma once
// Nonlinear DC operating point and backward-Euler transient analysis.

#include <vector>

#include "spice/circuit.hpp"
#include "util/units.hpp"
#include "spice/linear.hpp"
#include "tech/technology.hpp"

namespace taf::spice {

struct SolverOptions {
  util::units::Celsius temp_c{25.0};  ///< junction temperature for device evaluation
  double gmin = 1e-7;            ///< leak conductance to ground [mA/V]
  int max_newton_iters = 120;
  double v_tol = 1e-5;           ///< Newton convergence tolerance [V]
  double dt_ps = 2.0;            ///< transient timestep
  /// Linear solver backend; defaults from TAF_SPICE_BACKEND (sparse
  /// when unset). See linear.hpp.
  LinearBackend backend = default_backend();
};

struct TransientResult {
  std::vector<double> time_ps;
  /// waveforms[node][sample] — node voltages over time.
  std::vector<std::vector<double>> waveforms;

  double value_at(NodeId n, std::size_t sample) const {
    return waveforms[static_cast<std::size_t>(n)][sample];
  }
};

/// Solve the DC operating point at t = 0 (drives evaluated at t = 0).
/// Returns one voltage per node. Throws std::runtime_error on divergence.
std::vector<double> solve_dc(const Circuit& c, const tech::Technology& tech,
                             const SolverOptions& opt);

/// Backward-Euler transient from the DC operating point.
TransientResult solve_transient(const Circuit& c, const tech::Technology& tech,
                                const SolverOptions& opt, double t_stop_ps);

/// Time at which the node waveform crosses `threshold` in the given
/// direction (first crossing after t_from). Returns a negative value if no
/// crossing is found. Linear interpolation between samples.
double crossing_time_ps(const TransientResult& r, NodeId node, double threshold,
                        bool rising, double t_from_ps = 0.0);

/// 50%-to-50% propagation delay between an input and output node.
/// Returns negative if either crossing is missing.
double propagation_delay_ps(const TransientResult& r, NodeId in, NodeId out, double vdd,
                            bool in_rising, bool out_rising, double t_from_ps = 0.0);

}  // namespace taf::spice

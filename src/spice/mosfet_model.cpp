#include "spice/mosfet_model.hpp"

#include <algorithm>
#include <cmath>

namespace taf::spice {

namespace {

/// NMOS drain current and partial derivatives with vds >= 0 guaranteed by
/// the caller. [mA]
///
/// Single smooth expression covering subthreshold through saturation: the
/// overdrive is passed through a soft-plus with a thermal-voltage-scaled
/// knee, which yields an exponential subthreshold characteristic
/// (~90 mV/decade at 300 K) and the alpha-power law above threshold, with
/// continuous derivatives everywhere — a requirement for Newton
/// convergence on long gate chains. The derivatives are analytic, sharing
/// every transcendental with the current evaluation, so one call replaces
/// the four evaluations a forward-difference Jacobian needs.
struct CoreOp {
  double id;     ///< drain current [mA]
  double d_vds;  ///< dI/d(vds)
  double d_vgs;  ///< dI/d(vgs)
};

CoreOp nmos_core(const MosfetTherm& th, double vds, double vgs) {
  const double od = vgs - th.vth;
  const double x = od / th.knee;
  double od_eff, s;  // s = d(od_eff)/d(vgs)
  if (x > 30.0) {
    od_eff = od;
    s = 1.0;
  } else if (x < -30.0) {
    od_eff = th.knee * std::exp(-30.0);  // floor far below threshold
    s = 0.0;
  } else {
    const double e = std::exp(x);
    od_eff = th.knee * std::log1p(e);
    s = e / (1.0 + e);
  }

  const double idsat = th.k_w_mu * std::pow(od_eff, th.alpha);
  const double didsat = th.alpha * idsat / od_eff * s;
  double vdsat = 0.8 * od_eff;
  double dvdsat = 0.8 * s;
  if (vdsat < 0.03) {
    vdsat = 0.03;
    dvdsat = 0.0;
  }
  if (vds >= vdsat) {
    // Saturation with mild channel-length modulation.
    const double clm = 1.0 + 0.05 * (vds - vdsat);
    return {idsat * clm, idsat * 0.05, didsat * clm - idsat * 0.05 * dvdsat};
  }
  // Smooth triode interpolation id = idsat * r * (2 - r), r = vds/vdsat.
  const double r = vds / vdsat;
  const double dr_dvgs = -(r / vdsat) * dvdsat;
  return {idsat * r * (2.0 - r), idsat * (2.0 - 2.0 * r) / vdsat,
          didsat * r * (2.0 - r) + idsat * (2.0 - 2.0 * r) * dr_dvgs};
}

}  // namespace

MosfetTherm mosfet_therm(const Mosfet& m, const tech::Technology& t, double temp_c) {
  const tech::MosfetParams& p = t.flavor(m.flavor);
  MosfetTherm th;
  th.vth = tech::vth_at(p, temp_c);
  th.k_w_mu = p.k_drive * m.w_um * tech::mobility_factor(p, temp_c);
  th.knee = 0.045 * (temp_c + 273.15) / 298.15;
  th.alpha = p.alpha;
  th.pmos = m.type == MosType::Pmos;
  return th;
}

MosfetOp mosfet_eval(const MosfetTherm& th, double vd, double vg, double vs) {
  // The device is symmetric: when the nominal drain sits below the source
  // the roles swap and the current flows the other way. PMOS mirrors the
  // voltages; the returned sign keeps the convention "positive current
  // leaves the drain node". The derivative mappings follow by the chain
  // rule from the argument substitutions.
  if (!th.pmos) {
    if (vd >= vs) {
      const CoreOp c = nmos_core(th, vd - vs, vg - vs);
      return {c.id, c.d_vds, c.d_vgs, -c.d_vds - c.d_vgs};
    }
    const CoreOp c = nmos_core(th, vs - vd, vg - vd);
    return {-c.id, c.d_vds + c.d_vgs, -c.d_vgs, -c.d_vds};
  }
  if (vd <= vs) {
    const CoreOp c = nmos_core(th, vs - vd, vs - vg);
    return {-c.id, c.d_vds, c.d_vgs, -c.d_vds - c.d_vgs};
  }
  const CoreOp c = nmos_core(th, vd - vs, vd - vg);
  return {c.id, c.d_vds + c.d_vgs, -c.d_vgs, -c.d_vds};
}

double mosfet_current_ma(const Mosfet& m, const tech::Technology& t, double temp_c,
                         double vd, double vg, double vs) {
  return mosfet_eval(mosfet_therm(m, t, temp_c), vd, vg, vs).id_ma;
}

double mosfet_cgate_ff(const Mosfet& m, const tech::Technology& t) {
  return t.flavor(m.flavor).c_gate * m.w_um;
}

double mosfet_cdrain_ff(const Mosfet& m, const tech::Technology& t) {
  return t.flavor(m.flavor).c_drain * m.w_um;
}

}  // namespace taf::spice

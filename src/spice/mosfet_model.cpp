#include "spice/mosfet_model.hpp"

#include <algorithm>
#include <cmath>

namespace taf::spice {

namespace {

/// NMOS drain current with vd >= vs handled by the caller. [mA]
///
/// Single smooth expression covering subthreshold through saturation: the
/// overdrive is passed through a soft-plus with a thermal-voltage-scaled
/// knee, which yields an exponential subthreshold characteristic
/// (~90 mV/decade at 300 K) and the alpha-power law above threshold, with
/// continuous derivatives everywhere — a requirement for Newton
/// convergence on long gate chains.
double nmos_current(const tech::MosfetParams& p, double w_um, double temp_c, double vds,
                    double vgs) {
  if (vds <= 0.0) return 0.0;
  const double vth = tech::vth_at(p, temp_c);
  const double mu = tech::mobility_factor(p, temp_c);
  const double tk = temp_c + 273.15;
  const double knee = 0.045 * tk / 298.15;  // soft-plus width [V]

  const double od = vgs - vth;
  const double x = od / knee;
  double od_eff;
  if (x > 30.0) {
    od_eff = od;
  } else if (x < -30.0) {
    od_eff = knee * std::exp(-30.0);  // floor far below threshold
  } else {
    od_eff = knee * std::log1p(std::exp(x));
  }

  const double idsat = p.k_drive * w_um * mu * std::pow(od_eff, p.alpha);
  const double vdsat = std::max(0.8 * od_eff, 0.03);
  if (vds >= vdsat) {
    return idsat * (1.0 + 0.05 * (vds - vdsat));  // mild channel-length modulation
  }
  const double r = vds / vdsat;
  return idsat * r * (2.0 - r);  // smooth triode interpolation
}

}  // namespace

double mosfet_current_ma(const Mosfet& m, const tech::Technology& t, double temp_c,
                         double vd, double vg, double vs) {
  const tech::MosfetParams& p = t.flavor(m.flavor);
  if (m.type == MosType::Nmos) {
    // The device is symmetric: if vd < vs the roles of drain/source swap
    // and current flows the other way.
    if (vd >= vs) return nmos_current(p, m.w_um, temp_c, vd - vs, vg - vs);
    return -nmos_current(p, m.w_um, temp_c, vs - vd, vg - vd);
  }
  // PMOS: mirror voltages; returned sign keeps the convention "positive
  // current leaves the drain node".
  if (vd <= vs) return -nmos_current(p, m.w_um, temp_c, vs - vd, vs - vg);
  return nmos_current(p, m.w_um, temp_c, vd - vs, vd - vg);
}

double mosfet_cgate_ff(const Mosfet& m, const tech::Technology& t) {
  return t.flavor(m.flavor).c_gate * m.w_um;
}

double mosfet_cdrain_ff(const Mosfet& m, const tech::Technology& t) {
  return t.flavor(m.flavor).c_drain * m.w_um;
}

}  // namespace taf::spice

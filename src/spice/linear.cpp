#include "spice/linear.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "spice/sparse.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace taf::spice {

LinearBackend default_backend() {
  static const LinearBackend b = [] {
    if (const char* env = util::env_cstr("TAF_SPICE_BACKEND")) {
      if (std::strcmp(env, "dense") == 0) return LinearBackend::Dense;
      if (std::strcmp(env, "sparse") == 0) return LinearBackend::Sparse;
      util::log_warn("TAF_SPICE_BACKEND='%s' is not 'dense' or 'sparse'; using sparse",
                     env);
    }
    return LinearBackend::Sparse;
  }();
  return b;
}

const char* backend_name(LinearBackend b) {
  return b == LinearBackend::Dense ? "dense" : "sparse";
}

void dense_lu_solve(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::fabs(a[static_cast<size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[static_cast<size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kPivotFloor) {
      double& diag = a[static_cast<size_t>(col) * n + col];
      diag += (diag >= 0.0 ? kPivotNudge : -kPivotNudge);
      pivot = col;
    }
    if (pivot != col) {
      for (int k = 0; k < n; ++k)
        std::swap(a[static_cast<size_t>(pivot) * n + k], a[static_cast<size_t>(col) * n + k]);
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(col)]);
    }
    const double diag = a[static_cast<size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = a[static_cast<size_t>(r) * n + col] / diag;
      if (f == 0.0) continue;
      a[static_cast<size_t>(r) * n + col] = 0.0;
      for (int k = col + 1; k < n; ++k)
        a[static_cast<size_t>(r) * n + k] -= f * a[static_cast<size_t>(col) * n + k];
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    for (int k = r + 1; k < n; ++k) sum -= a[static_cast<size_t>(r) * n + k] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(r)] = sum / a[static_cast<size_t>(r) * n + r];
  }
}

SolverCounters& thread_counters() {
  thread_local SolverCounters counters;
  return counters;
}

namespace {

class DenseSystem final : public LinearSystem {
 public:
  explicit DenseSystem(int n) : n_(n), a_(static_cast<size_t>(n) * n) {}

  void begin() override { std::fill(a_.begin(), a_.end(), 0.0); }
  void add(int i, int j, double v) override {
    a_[static_cast<size_t>(i) * n_ + j] += v;
  }
  void factor_solve(std::vector<double>& rhs) override {
    work_ = a_;
    dense_lu_solve(work_, rhs, n_);
    ++thread_counters().factorizations;
  }
  LinearBackend backend() const override { return LinearBackend::Dense; }

 private:
  int n_;
  std::vector<double> a_;
  std::vector<double> work_;
};

}  // namespace

std::unique_ptr<LinearSystem> make_linear_system(LinearBackend backend, int n,
                                                 const SparsityPattern& pattern) {
  if (backend == LinearBackend::Dense) return std::make_unique<DenseSystem>(n);
  return std::make_unique<SparseSystem>(n, pattern);
}

}  // namespace taf::spice

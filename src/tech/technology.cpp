#include "tech/technology.hpp"

#include <cassert>
#include <cmath>

namespace taf::tech {

Technology ptm22() {
  Technology t;
  t.vdd = 0.8;
  t.vdd_lp = 0.95;
  t.lmin_um = 0.022;

  // HP logic transistor: moderate temperature sensitivity (~+40% delay
  // over 0..100 degC when buffer-dominated), matching the switch-block
  // driver behaviour in Table II.
  MosfetParams hp;
  hp.vth0 = 0.35;
  hp.vth_tc = -5.0e-4;
  hp.mu_exp = 1.2;
  hp.alpha = 1.3;
  hp.k_drive = 1.10;
  hp.i_off25 = 18.0;
  hp.lkg_tc = 0.014;
  hp.c_gate = 0.90;
  hp.c_drain = 0.55;

  // Pass-gate usage of the HP device: body effect raises the effective
  // threshold and the roll-off is weaker, so mobility dominates and the
  // structure is the most temperature sensitive (+~80% for a deep tree).
  MosfetParams pg = hp;
  pg.vth0 = 0.37;
  pg.vth_tc = -2.0e-4;
  pg.mu_exp = 1.5;
  pg.k_drive = 0.80;
  pg.i_off25 = 9.0;
  pg.lkg_tc = 0.015;

  // LP / high-Vth transistor for the BRAM core (paper uses the PTM
  // low-power flavor at 0.95 V for the memory).
  MosfetParams lp = hp;
  lp.vth0 = 0.48;
  lp.vth_tc = -3.0e-4;
  lp.mu_exp = 1.9;
  lp.k_drive = 0.85;
  lp.i_off25 = 0.9;
  lp.lkg_tc = 0.010;

  // Standard-cell transistor (NanGate-like): sized-for-density cells show
  // higher sensitivity than hand-tuned FPGA drivers (+~80% for the DSP).
  MosfetParams sc = hp;
  sc.vth0 = 0.36;
  sc.vth_tc = -2.5e-4;
  sc.mu_exp = 2.0;
  sc.k_drive = 1.00;
  sc.i_off25 = 14.0;
  sc.lkg_tc = 0.010;

  t.flavors[static_cast<int>(Flavor::HP)] = hp;
  t.flavors[static_cast<int>(Flavor::PassGate)] = pg;
  t.flavors[static_cast<int>(Flavor::LP)] = lp;
  t.flavors[static_cast<int>(Flavor::StdCell)] = sc;

  t.wire_r_per_um25 = 2.0;
  t.wire_r_tc = 0.0020;
  t.wire_c_per_um = 0.20;
  return t;
}

double vth_at(const MosfetParams& p, double temp_c) {
  return p.vth0 + p.vth_tc * (temp_c - 25.0);
}

double mobility_factor(const MosfetParams& p, double temp_c) {
  const double tk = temp_c + 273.15;
  return std::pow(tk / 298.15, -p.mu_exp);
}

double on_current_ma(const MosfetParams& p, double w_um, double vdd, double temp_c) {
  assert(w_um > 0.0);
  const double overdrive = vdd - vth_at(p, temp_c);
  if (overdrive <= 0.0) return 0.0;
  return p.k_drive * w_um * mobility_factor(p, temp_c) * std::pow(overdrive, p.alpha);
}

double effective_resistance_kohm(const MosfetParams& p, double w_um, double vdd,
                                 double temp_c) {
  const double ion = on_current_ma(p, w_um, vdd, temp_c);
  assert(ion > 0.0 && "device does not conduct at this corner");
  // V / I : [V] / [mA] = [kOhm]
  return vdd / ion;
}

double off_current_na(const MosfetParams& p, double w_um, double temp_c) {
  return p.i_off25 * w_um * std::exp(p.lkg_tc * (temp_c - 25.0));
}

double wire_resistance_ohm(const Technology& t, double length_um, double temp_c) {
  return t.wire_r_per_um25 * length_um * (1.0 + t.wire_r_tc * (temp_c - 25.0));
}

double wire_capacitance_ff(const Technology& t, double length_um) {
  return t.wire_c_per_um * length_um;
}

}  // namespace taf::tech

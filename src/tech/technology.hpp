#pragma once
// 22 nm PTM-like technology description.
//
// The paper characterizes FPGA resources with HSPICE over 22 nm PTM
// high-performance transistors (low-power / high-Vth for the BRAM core).
// We reproduce the two mechanisms that drive every experiment:
//   * delay grows near-linearly with temperature (mobility degradation,
//     partially offset by Vth roll-off), with per-resource sensitivity
//     between ~+40% and ~+86% over 0..100 degC (paper Fig. 1 / Table II);
//   * subthreshold leakage grows exponentially with temperature
//     (Table II reports rates of ~e^(0.014 T)).
//
// Parameters below are calibrated so that the characterized D25 device
// lands near the paper's Table II fits; the calibration is recorded in
// EXPERIMENTS.md. Flavors differ in mobility temperature exponent and
// Vth temperature coefficient — pass-transistor-dominated structures
// (LUT input tree) are the most temperature sensitive, buffer-dominated
// structures (switch-block drivers) the least, matching the paper's
// observation that a LUT slows by up to 69% while a switch box slows 39%.

namespace taf::tech {

/// Transistor flavor. Flavors map to the paper's usage:
///  HP        - high-performance logic transistor (soft-fabric buffers)
///  PassGate  - HP transistor used as a pass gate (mux/LUT trees); reduced
///              overdrive and weaker Vth roll-off make it more T-sensitive
///  LP        - low-power / high-Vth transistor (BRAM core, per the paper)
///  StdCell   - transistor as characterized inside the NanGate-like standard
///              cells used for the DSP block
enum class Flavor { HP = 0, PassGate, LP, StdCell };
inline constexpr int kNumFlavors = 4;

/// Per-flavor MOSFET parameters for the alpha-power-law model.
struct MosfetParams {
  double vth0 = 0.35;      ///< |Vth| at 25 degC [V]
  double vth_tc = -5e-4;   ///< Vth temperature coefficient [V/degC]
  double mu_exp = 1.5;     ///< mobility ~ (T_K / 298K)^(-mu_exp)
  double alpha = 1.3;      ///< alpha-power-law velocity-saturation exponent
  double k_drive = 1.0;    ///< drive strength scale [mA/um at unit overdrive]
  double i_off25 = 1.0;    ///< off-current per um width at 25 degC [nA/um]
  double lkg_tc = 0.014;   ///< leakage ~ exp(lkg_tc * (T - 25)) [1/degC]
  double c_gate = 1.0;     ///< gate capacitance per um width [fF/um]
  double c_drain = 0.6;    ///< drain junction capacitance per um width [fF/um]
};

/// Full technology corner.
struct Technology {
  double vdd = 0.8;       ///< soft-fabric supply [V]
  double vdd_lp = 0.95;   ///< BRAM low-power supply [V] (paper Table I)
  double lmin_um = 0.022; ///< drawn channel length [um]
  MosfetParams flavors[kNumFlavors];
  double wire_r_per_um25 = 2.0;  ///< wire resistance at 25 degC [ohm/um]
  double wire_r_tc = 0.0020;     ///< fractional wire R increase per degC (Cu)
  double wire_c_per_um = 0.20;   ///< wire capacitance [fF/um]

  const MosfetParams& flavor(Flavor f) const { return flavors[static_cast<int>(f)]; }
};

/// The calibrated 22 nm technology used throughout the reproduction.
Technology ptm22();

/// Threshold voltage at temperature [V].
double vth_at(const MosfetParams& p, double temp_c);

/// Mobility degradation factor relative to 25 degC (dimensionless).
double mobility_factor(const MosfetParams& p, double temp_c);

/// Saturation on-current of a device of width w_um at the given supply and
/// temperature [mA]. Returns 0 if the device cannot turn on (vdd <= Vth).
double on_current_ma(const MosfetParams& p, double w_um, double vdd, double temp_c);

/// Effective switching resistance Vdd / Ion of a width-w device [kOhm].
/// This is the resistance the Elmore-based sizing model uses.
double effective_resistance_kohm(const MosfetParams& p, double w_um, double vdd,
                                 double temp_c);

/// Subthreshold off-current of a width-w device at temperature [nA].
double off_current_na(const MosfetParams& p, double w_um, double temp_c);

/// Wire resistance of a segment [ohm] at temperature.
double wire_resistance_ohm(const Technology& t, double length_um, double temp_c);

/// Wire capacitance of a segment [fF].
double wire_capacitance_ff(const Technology& t, double length_um);

}  // namespace taf::tech
